//! Conformance suite for the sampler chain: golden vectors pin every
//! deterministic stage against hand-computed distributions, and property
//! tests pin the chain's structural guarantees — draws land in the
//! filtered support, temperature zero degenerates to argmax, `top_k = 1`
//! is greedy, and the same seed replays the same tokens no matter how the
//! surrounding batch is shaped or which thread runs the chain.

use cocktail_model::sample::{
    apply_penalties, apply_temperature, argmax, filtered_distribution, softmax, sort_candidates,
    top_p_filter,
};
use cocktail_model::{SamplerChain, SamplingParams};
use proptest::prelude::*;

/// Comparison tolerance for the hand-computed vectors: the golden logits
/// are `f32` logarithms, so the exponentiated ratios carry ~1e-7 of
/// single-precision rounding.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-5
}

// ---------------------------------------------------------------------------
// Golden vectors, one stage at a time
// ---------------------------------------------------------------------------

#[test]
fn golden_softmax_matches_hand_computed_ratios() {
    // logits [ln 1, ln 2, ln 5] => probabilities exactly [1/8, 2/8, 5/8].
    let logits = [0.0_f32, 2.0_f32.ln(), 5.0_f32.ln()];
    let probs = softmax(&logits);
    assert!(close(probs[0], 1.0 / 8.0));
    assert!(close(probs[1], 2.0 / 8.0));
    assert!(close(probs[2], 5.0 / 8.0));
}

#[test]
fn golden_temperature_halves_and_doubles_the_logit_scale() {
    // Dividing [ln 4, 0] by temperature 2 gives [ln 2, 0]: the 4:1 odds
    // soften to exactly 2:1.
    let mut logits = [4.0_f32.ln(), 0.0];
    apply_temperature(&mut logits, 2.0);
    let probs = softmax(&logits);
    assert!(close(probs[0] / probs[1], 2.0));
    // Temperature 0.5 sharpens the original 4:1 odds to 16:1.
    let mut logits = [4.0_f32.ln(), 0.0];
    apply_temperature(&mut logits, 0.5);
    let probs = softmax(&logits);
    assert!(close(probs[0] / probs[1], 16.0));
    // Temperature 1.0 is exactly a no-op (bit-identical logits).
    let mut logits = [1.25_f32, -3.5, 0.0];
    apply_temperature(&mut logits, 1.0);
    assert_eq!(logits, [1.25, -3.5, 0.0]);
}

#[test]
fn golden_repetition_penalty_divides_positive_and_multiplies_negative() {
    // CTRL-style: +2 becomes +1 under penalty 2, -1 becomes -2.
    let mut logits = [2.0_f32, -1.0, 0.5];
    apply_penalties(&mut logits, &[0, 1], 2.0, 0.0);
    assert_eq!(logits, [1.0, -2.0, 0.5]);
}

#[test]
fn golden_presence_penalty_subtracts_a_flat_amount_once() {
    // Token 0 appears three times in the history but is penalised once:
    // the presence penalty is about *whether* a token appeared, not how
    // often, and the repetition division must not compound either.
    let mut logits = [2.0_f32, 1.0];
    apply_penalties(&mut logits, &[0, 0, 0], 2.0, 0.25);
    assert_eq!(logits, [2.0 / 2.0 - 0.25, 1.0]);
}

#[test]
fn golden_penalties_ignore_tokens_beyond_the_horizon() {
    // A history token beyond the logits row (a later vocab-horizon draw)
    // must not index out of bounds or disturb anything.
    let mut logits = [1.0_f32, 2.0];
    apply_penalties(&mut logits, &[7], 2.0, 0.5);
    assert_eq!(logits, [1.0, 2.0]);
}

#[test]
fn golden_draw_order_sorts_by_logit_then_token_id() {
    let mut candidates = vec![(0u32, 1.0f32), (1, 3.0), (2, 3.0), (3, -1.0)];
    sort_candidates(&mut candidates);
    let order: Vec<u32> = candidates.iter().map(|&(t, _)| t).collect();
    // Ties (tokens 1 and 2 at logit 3.0) break by ascending id.
    assert_eq!(order, vec![1, 2, 0, 3]);
}

#[test]
fn golden_top_k_keeps_the_k_highest_logits() {
    // logits [ln 1, ln 2, ln 5, ln 8]: top-2 keeps tokens 3 and 2 and
    // renormalises to 8/13 and 5/13.
    let logits = [0.0_f32, 2.0_f32.ln(), 5.0_f32.ln(), 8.0_f32.ln()];
    let params = SamplingParams::seeded(0).with_top_k(2);
    let support = filtered_distribution(&logits, &params, &[]);
    assert_eq!(support.len(), 2);
    assert_eq!(support[0].0, 3);
    assert_eq!(support[1].0, 2);
    assert!(close(support[0].1, 8.0 / 13.0));
    assert!(close(support[1].1, 5.0 / 13.0));
}

#[test]
fn golden_top_p_keeps_the_smallest_covering_prefix() {
    // Sorted probabilities [0.5, 0.3, 0.2]: p = 0.7 keeps the first two
    // (0.5 alone misses 0.7, 0.8 covers it) renormalised to 5/8 and 3/8.
    let mut probs = vec![(2u32, 0.5f64), (0, 0.3), (1, 0.2)];
    top_p_filter(&mut probs, 0.7);
    assert_eq!(probs.len(), 2);
    assert_eq!(probs[0].0, 2);
    assert_eq!(probs[1].0, 0);
    assert!(close(probs[0].1, 0.5 / 0.8));
    assert!(close(probs[1].1, 0.3 / 0.8));
    // p = 1.0 keeps everything; the filter never empties the support.
    let mut all = vec![(0u32, 0.6f64), (1, 0.4)];
    top_p_filter(&mut all, 1.0);
    assert_eq!(all.len(), 2);
    let mut tiny = vec![(5u32, 1.0f64)];
    top_p_filter(&mut tiny, 0.01);
    assert_eq!(tiny, vec![(5, 1.0)]);
}

#[test]
fn golden_full_chain_composes_the_stages_in_order() {
    // Penalties first (token 3's ln 8 halves to ln 8 / 2 ~ 1.0397, pushing
    // it below token 2's ln 5), then temperature, then top-k, then top-p.
    let logits = [0.0_f32, 2.0_f32.ln(), 5.0_f32.ln(), 8.0_f32.ln()];
    let params = SamplingParams::seeded(0)
        .with_repetition_penalty(2.0)
        .with_top_k(2)
        .with_top_p(0.99);
    let support = filtered_distribution(&logits, &params, &[3]);
    // Draw order is token 2 (ln 5 ~ 1.609) then token 3 (ln 8 / 2).
    assert_eq!(support[0].0, 2);
    assert_eq!(support[1].0, 3);
    let e2 = 5.0f64;
    let e3 = f64::from(8.0_f32.ln() / 2.0).exp();
    assert!(close(support[0].1, e2 / (e2 + e3)));
    assert!(close(support[1].1, e3 / (e2 + e3)));
}

#[test]
fn golden_identity_chain_is_the_plain_softmax() {
    let logits = [0.0_f32, 2.0_f32.ln(), 5.0_f32.ln()];
    let support = filtered_distribution(&logits, &SamplingParams::seeded(9), &[]);
    // Draw order: highest probability first.
    assert_eq!(
        support.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
        [2, 1, 0]
    );
    assert!(close(support[0].1, 5.0 / 8.0));
    assert!(close(support[1].1, 2.0 / 8.0));
    assert!(close(support[2].1, 1.0 / 8.0));
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

/// Builds valid [`SamplingParams`] from plain drawn numbers: `top_k_raw`
/// and `top_p_raw` at zero mean "absent" (the shimmed proptest has no
/// `option::of`, so optionality is encoded in the range).
fn params_from(
    seed: u64,
    temperature: f32,
    top_k_raw: usize,
    top_p_raw: f32,
    repetition_penalty: f32,
    presence_penalty: f32,
) -> SamplingParams {
    let mut params = SamplingParams::seeded(seed)
        .with_temperature(temperature)
        .with_repetition_penalty(repetition_penalty)
        .with_presence_penalty(presence_penalty);
    if top_k_raw > 0 {
        params = params.with_top_k(top_k_raw);
    }
    if top_p_raw > 0.0 {
        params = params.with_top_p(top_p_raw.clamp(0.05, 1.0));
    }
    params
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every draw is a member of the filtered support — never a truncated
    /// token, never out of the vocab horizon — and the filtered support
    /// itself is a valid distribution.
    #[test]
    fn draws_stay_inside_the_filtered_support(
        logits in proptest::collection::vec(-8.0f32..8.0, 1..24),
        seed in 0u64..u64::MAX,
        temperature in 0.05f32..3.0,
        top_k_raw in 0usize..16,
        top_p_raw in 0.0f32..1.0,
        rp in 0.5f32..3.0,
        pp in 0.0f32..2.0,
        history in proptest::collection::vec(0u32..24, 0..8),
    ) {
        let params = params_from(seed, temperature, top_k_raw, top_p_raw, rp, pp);
        prop_assert!(params.validate().is_ok());
        let support = filtered_distribution(&logits, &params, &history);
        prop_assert!(!support.is_empty());
        let total: f64 = support.iter().map(|&(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        if let Some(k) = params.top_k {
            prop_assert!(support.len() <= k);
        }
        let mut chain = SamplerChain::new(params);
        for _ in 0..8 {
            let token = chain.sample(&logits, &history);
            prop_assert!((token as usize) < logits.len());
            prop_assert!(
                support.iter().any(|&(t, _)| t == token),
                "draw {} outside the filtered support",
                token
            );
        }
    }

    /// Temperature zero is exactly greedy argmax (over penalised logits),
    /// for any seed — the RNG never gets a say.
    #[test]
    fn temperature_zero_is_argmax(
        logits in proptest::collection::vec(-8.0f32..8.0, 1..24),
        seed in 0u64..u64::MAX,
        history in proptest::collection::vec(0u32..24, 0..8),
    ) {
        let params = SamplingParams::seeded(seed).with_temperature(0.0);
        prop_assert!(params.is_greedy());
        let mut chain = SamplerChain::new(params);
        for _ in 0..4 {
            prop_assert_eq!(chain.sample(&logits, &history), argmax(&logits));
        }
    }

    /// `top_k = 1` collapses the support to the argmax token, so the draw
    /// equals greedy decode regardless of seed or temperature.
    #[test]
    fn top_k_one_is_greedy(
        logits in proptest::collection::vec(-8.0f32..8.0, 1..24),
        seed in 0u64..u64::MAX,
        temperature in 0.05f32..3.0,
    ) {
        let params = SamplingParams::seeded(seed)
            .with_temperature(temperature)
            .with_top_k(1);
        let support = filtered_distribution(&logits, &params, &[]);
        prop_assert_eq!(support.len(), 1);
        let mut chain = SamplerChain::new(params);
        prop_assert_eq!(chain.sample(&logits, &[]), argmax(&logits));
    }

    /// The same seed draws the same token stream no matter how many other
    /// chains run around it — the in-process analogue of batch
    /// invariance. One chain runs alone; its twin runs interleaved with a
    /// crowd of differently-seeded chains sharing the loop.
    #[test]
    fn identical_seeds_draw_identically_across_batch_shapes(
        logits in proptest::collection::vec(-8.0f32..8.0, 1..24),
        seed in 0u64..u64::MAX,
        temperature in 0.05f32..3.0,
        top_k_raw in 0usize..16,
        top_p_raw in 0.0f32..1.0,
        crowd in 1usize..6,
    ) {
        let params = params_from(seed, temperature, top_k_raw, top_p_raw, 1.3, 0.2);
        let mut solo = SamplerChain::new(params.clone());
        let mut batched = SamplerChain::new(params.clone());
        let mut bystanders: Vec<SamplerChain> = (0..crowd)
            .map(|i| {
                SamplerChain::new(
                    params.clone().with_seed(params.seed.wrapping_add(1 + i as u64)),
                )
            })
            .collect();
        let mut history = Vec::new();
        for _ in 0..12 {
            let expected = solo.sample(&logits, &history);
            // The bystanders interleave their own draws; private streams
            // mean they cannot perturb the twin.
            for bystander in bystanders.iter_mut() {
                bystander.sample(&logits, &history);
            }
            let got = batched.sample(&logits, &history);
            prop_assert_eq!(expected, got);
            history.push(expected);
        }
    }

    /// The same seed draws the same token stream on any thread: chains
    /// hold no global state, so a multi-threaded decode loop replays a
    /// single-threaded one exactly.
    #[test]
    fn identical_seeds_draw_identically_across_threads(
        logits in proptest::collection::vec(-8.0f32..8.0, 1..24),
        seed in 0u64..u64::MAX,
        temperature in 0.05f32..3.0,
        top_k_raw in 0usize..16,
        top_p_raw in 0.0f32..1.0,
        threads in 2usize..5,
    ) {
        let params = params_from(seed, temperature, top_k_raw, top_p_raw, 1.3, 0.2);
        let mut reference = SamplerChain::new(params.clone());
        let mut history = Vec::new();
        for _ in 0..8 {
            history.push(reference.sample(&logits, &history));
        }
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let logits = logits.clone();
                let params = params.clone();
                std::thread::spawn(move || {
                    let mut chain = SamplerChain::new(params);
                    let mut drawn = Vec::new();
                    for _ in 0..8 {
                        drawn.push(chain.sample(&logits, &drawn));
                    }
                    drawn
                })
            })
            .collect();
        for handle in handles {
            let drawn = handle.join().expect("sampler thread panicked");
            prop_assert_eq!(&drawn, &history);
        }
    }
}
