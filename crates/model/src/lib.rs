//! A from-scratch decoder-only transformer inference engine.
//!
//! The Cocktail paper evaluates its KV-cache quantization on Llama2-7B/13B,
//! Mistral-7B and Longchat-7B. Those checkpoints are not available in this
//! reproduction, so this crate provides the same *inference machinery* —
//! RMSNorm, rotary position embeddings, grouped-query attention over a
//! pluggable chunked KV cache, SwiGLU MLPs, prefill and decode phases —
//! driven by deterministic seeded weights, together with
//! [`ModelProfile`]s that mirror the four papers' models at two scales:
//!
//! * a *simulated* configuration small enough to run real inference on a
//!   CPU, preserving the architectural ratios (GQA grouping, context
//!   limits), and
//! * the *full-size* dimension sheet of the original checkpoint, used by
//!   the analytic hardware model in `cocktail-hwsim` for memory and latency
//!   accounting.
//!
//! # Example
//!
//! ```
//! use cocktail_model::{InferenceEngine, ModelProfile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = InferenceEngine::new(ModelProfile::llama2_7b_sim())?;
//! let tokens = engine.tokenizer().encode("the quick brown fox jumps over the lazy dog");
//! let prefill = engine.prefill(&tokens)?;
//! let mut cache = engine.build_cache(&prefill, 4)?;
//! let step = engine.decode_step(*tokens.last().unwrap(), tokens.len(), &mut cache)?;
//! assert!((step.next_token as usize) < engine.config().vocab_size);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod error;
mod pool;
mod profile;
pub mod sample;
mod tokenizer;
mod weights;

pub use config::ModelConfig;
pub use engine::{
    BatchPrefill, DecodeSlot, DecodeStep, InferenceEngine, PrefillOutput, PrefillSlot, RawKv,
};
pub use error::ModelError;
pub use pool::WorkerPool;
pub use profile::ModelProfile;
pub use sample::{SamplerChain, SamplingParams};
pub use tokenizer::{Tokenizer, BOS_TOKEN, UNK_TOKEN};
pub use weights::{LayerWeights, ModelWeights};
