//! A small, deterministic word-level tokenizer.
//!
//! The paper's models use SentencePiece/BPE vocabularies; for the synthetic
//! workloads in this reproduction a reversible word-level tokenizer is
//! sufficient and keeps every experiment deterministic. Words are interned
//! in encounter order; once the vocabulary is full, further words are
//! hash-folded onto existing ids (lossy, as with any closed vocabulary).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Mutex;

/// Reserved id for the beginning-of-sequence marker.
pub const BOS_TOKEN: u32 = 0;
/// Reserved id for unknown / folded tokens.
pub const UNK_TOKEN: u32 = 1;
/// Number of reserved ids at the start of the vocabulary.
const RESERVED: u32 = 2;

/// A deterministic, reversible word-level tokenizer with a bounded
/// vocabulary.
///
/// Encoding is whitespace splitting with punctuation detachment and
/// lower-casing; ids are assigned in first-encounter order, which keeps
/// runs reproducible for a fixed corpus generation seed.
///
/// # Example
///
/// ```
/// use cocktail_model::Tokenizer;
///
/// let tok = Tokenizer::new(1024);
/// let ids = tok.encode("The secret code is ALPHA-42.");
/// assert!(!ids.is_empty());
/// let text = tok.decode(&ids);
/// assert!(text.contains("secret code"));
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct Tokenizer {
    vocab_size: usize,
    #[serde(skip)]
    state: Mutex<VocabState>,
}

#[derive(Debug, Default)]
struct VocabState {
    word_to_id: HashMap<String, u32>,
    id_to_word: Vec<String>,
}

impl Tokenizer {
    /// Creates a tokenizer with the given maximum vocabulary size.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size` is smaller than the reserved token count (2).
    pub fn new(vocab_size: usize) -> Self {
        assert!(
            vocab_size > RESERVED as usize,
            "vocabulary must be larger than the reserved tokens"
        );
        Self {
            vocab_size,
            state: Mutex::new(VocabState::default()),
        }
    }

    /// Maximum vocabulary size (including reserved tokens).
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Number of distinct words interned so far.
    pub fn interned_words(&self) -> usize {
        self.state.lock().expect("tokenizer lock").id_to_word.len()
    }

    /// Splits text into normalised word/punctuation pieces.
    pub fn split_words(text: &str) -> Vec<String> {
        let mut words = Vec::new();
        for raw in text.split_whitespace() {
            let mut current = String::new();
            for ch in raw.chars() {
                if ch.is_alphanumeric() || ch == '_' || ch == '-' {
                    current.extend(ch.to_lowercase());
                } else {
                    if !current.is_empty() {
                        words.push(std::mem::take(&mut current));
                    }
                    words.push(ch.to_string());
                }
            }
            if !current.is_empty() {
                words.push(current);
            }
        }
        words
    }

    fn fold_hash(word: &str, capacity: u32) -> u32 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in word.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        RESERVED + (hash % u64::from(capacity)) as u32
    }

    /// Encodes text into token ids (without a BOS marker).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let words = Self::split_words(text);
        let mut state = self.state.lock().expect("tokenizer lock");
        let capacity = (self.vocab_size as u32).saturating_sub(RESERVED);
        words
            .iter()
            .map(|w| {
                if let Some(&id) = state.word_to_id.get(w) {
                    return id;
                }
                if (state.id_to_word.len() as u32) < capacity {
                    let id = RESERVED + state.id_to_word.len() as u32;
                    state.word_to_id.insert(w.clone(), id);
                    state.id_to_word.push(w.clone());
                    id
                } else {
                    Self::fold_hash(w, capacity)
                }
            })
            .collect()
    }

    /// Encodes text with a leading BOS token.
    pub fn encode_with_bos(&self, text: &str) -> Vec<u32> {
        let mut ids = vec![BOS_TOKEN];
        ids.extend(self.encode(text));
        ids
    }

    /// Decodes token ids back into text. Unknown or folded ids decode to
    /// `"<unk>"`.
    pub fn decode(&self, ids: &[u32]) -> String {
        self.decode_with_horizon(ids, usize::MAX)
    }

    /// Decodes token ids using only the first `interned_limit` interned
    /// words; ids interned later render as `"<unk>"`.
    ///
    /// The tokenizer interns words in encounter order, so what `decode`
    /// renders for an id depends on how much text has been encoded when it
    /// runs. A multi-request serving engine encodes many requests before
    /// decoding any of them; passing the value [`Tokenizer::interned_words`]
    /// had when a request's prompt was encoded pins that request's
    /// rendering to its own vocabulary view, making the output independent
    /// of whichever requests happen to share the engine.
    pub fn decode_with_horizon(&self, ids: &[u32], interned_limit: usize) -> String {
        let state = self.state.lock().expect("tokenizer lock");
        let words: Vec<&str> = ids
            .iter()
            .map(|&id| {
                if id == BOS_TOKEN {
                    "<s>"
                } else if id < RESERVED {
                    "<unk>"
                } else {
                    let index = (id - RESERVED) as usize;
                    if index >= interned_limit {
                        return "<unk>";
                    }
                    state
                        .id_to_word
                        .get(index)
                        .map(String::as_str)
                        .unwrap_or("<unk>")
                }
            })
            .collect();
        words.join(" ")
    }

    /// Decodes a single token id.
    pub fn decode_token(&self, id: u32) -> String {
        self.decode(&[id])
    }

    /// The interned vocabulary in encounter order — the data a trie
    /// snapshot must carry, because token ids are only meaningful under the
    /// interning order that produced them.
    pub fn interned_vocab(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("tokenizer lock")
            .id_to_word
            .clone()
    }

    /// Aligns this tokenizer's interning order with a snapshot's vocabulary.
    ///
    /// Returns `true` when the two orders are compatible: either the
    /// current vocabulary is a prefix of `vocab` (the remainder is interned
    /// so snapshot token ids resolve to the right words), or `vocab` is a
    /// prefix of the current vocabulary (nothing to do). Returns `false` —
    /// leaving the tokenizer untouched — when the orders diverge or the
    /// snapshot vocabulary would overflow this tokenizer's capacity; the
    /// caller should then discard the snapshot and start cold.
    pub fn align_vocab(&self, vocab: &[String]) -> bool {
        let mut state = self.state.lock().expect("tokenizer lock");
        let interned = state.id_to_word.len();
        if vocab.len() <= interned {
            return state.id_to_word[..vocab.len()] == *vocab;
        }
        if state.id_to_word[..] != vocab[..interned] {
            return false;
        }
        let capacity = self.vocab_size.saturating_sub(RESERVED as usize);
        if vocab.len() > capacity {
            return false;
        }
        for word in &vocab[interned..] {
            let id = RESERVED + state.id_to_word.len() as u32;
            state.word_to_id.insert(word.clone(), id);
            state.id_to_word.push(word.clone());
        }
        true
    }
}

impl Clone for Tokenizer {
    fn clone(&self) -> Self {
        let state = self.state.lock().expect("tokenizer lock");
        Self {
            vocab_size: self.vocab_size,
            state: Mutex::new(VocabState {
                word_to_id: state.word_to_id.clone(),
                id_to_word: state.id_to_word.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_for_simple_text() {
        let tok = Tokenizer::new(4096);
        let text = "the quick brown fox jumps over the lazy dog";
        let ids = tok.encode(text);
        assert_eq!(ids.len(), 9);
        assert_eq!(tok.decode(&ids), text);
    }

    #[test]
    fn repeated_words_share_ids() {
        let tok = Tokenizer::new(4096);
        let ids = tok.encode("dog cat dog");
        assert_eq!(ids[0], ids[2]);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn punctuation_is_detached() {
        let words = Tokenizer::split_words("Hello, world!");
        assert_eq!(words, vec!["hello", ",", "world", "!"]);
    }

    #[test]
    fn casing_is_normalised() {
        let tok = Tokenizer::new(4096);
        let a = tok.encode("Paris");
        let b = tok.encode("paris");
        assert_eq!(a, b);
    }

    #[test]
    fn bos_is_prepended() {
        let tok = Tokenizer::new(4096);
        let ids = tok.encode_with_bos("hi");
        assert_eq!(ids[0], BOS_TOKEN);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn vocabulary_overflow_folds_but_never_panics() {
        let tok = Tokenizer::new(8); // 6 usable slots
        let text: Vec<String> = (0..50).map(|i| format!("word{i}")).collect();
        let ids = tok.encode(&text.join(" "));
        assert_eq!(ids.len(), 50);
        assert!(ids.iter().all(|&id| (id as usize) < 8 || id >= RESERVED));
        assert!(tok.interned_words() <= 6);
    }

    #[test]
    fn decode_unknown_id_is_unk() {
        let tok = Tokenizer::new(64);
        assert_eq!(tok.decode_token(UNK_TOKEN), "<unk>");
        assert_eq!(tok.decode_token(63), "<unk>");
    }

    #[test]
    fn clone_preserves_vocabulary() {
        let tok = Tokenizer::new(128);
        let ids = tok.encode("alpha beta gamma");
        let cloned = tok.clone();
        assert_eq!(cloned.decode(&ids), "alpha beta gamma");
    }

    #[test]
    #[should_panic(expected = "larger than the reserved")]
    fn tiny_vocab_is_rejected() {
        Tokenizer::new(2);
    }

    #[test]
    fn align_vocab_replays_a_snapshot_interning_order() {
        let source = Tokenizer::new(64);
        let ids = source.encode("alpha beta gamma delta");
        let vocab = source.interned_vocab();
        assert_eq!(vocab, vec!["alpha", "beta", "gamma", "delta"]);

        // Fresh tokenizer: the whole order is replayed.
        let fresh = Tokenizer::new(64);
        assert!(fresh.align_vocab(&vocab));
        assert_eq!(fresh.encode("alpha beta gamma delta"), ids);

        // Compatible prefix already interned: the remainder is appended.
        let partial = Tokenizer::new(64);
        partial.encode("alpha beta");
        assert!(partial.align_vocab(&vocab));
        assert_eq!(partial.encode("gamma delta"), ids[2..].to_vec());

        // Snapshot vocabulary a prefix of the current one: no-op success.
        let ahead = Tokenizer::new(64);
        ahead.encode("alpha beta gamma delta epsilon");
        assert!(ahead.align_vocab(&vocab));

        // Diverging order: refused, tokenizer untouched.
        let diverged = Tokenizer::new(64);
        diverged.encode("zeta alpha");
        assert!(!diverged.align_vocab(&vocab));
        assert_eq!(diverged.interned_vocab(), vec!["zeta", "alpha"]);

        // Overflowing capacity: refused.
        let tiny = Tokenizer::new(4); // 2 usable slots
        assert!(!tiny.align_vocab(&vocab));
    }

    #[test]
    fn hyphenated_codes_stay_single_tokens() {
        let words = Tokenizer::split_words("code ALPHA-42 end");
        assert_eq!(words, vec!["code", "alpha-42", "end"]);
    }
}
