//! Deterministic, seeded model weights.

use crate::config::ModelConfig;
use cocktail_tensor::rng::{derive_seed, gaussian_matrix, uniform_vec};
use cocktail_tensor::Matrix;

/// Weights of a single decoder layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights {
    /// Query projection, `hidden × (n_heads · head_dim)`.
    pub wq: Matrix,
    /// Key projection, `hidden × (n_kv_heads · head_dim)`.
    pub wk: Matrix,
    /// Value projection, `hidden × (n_kv_heads · head_dim)`.
    pub wv: Matrix,
    /// Output projection, `(n_heads · head_dim) × hidden`.
    pub wo: Matrix,
    /// SwiGLU gate projection, `hidden × intermediate`.
    pub w_gate: Matrix,
    /// SwiGLU up projection, `hidden × intermediate`.
    pub w_up: Matrix,
    /// SwiGLU down projection, `intermediate × hidden`.
    pub w_down: Matrix,
    /// RMSNorm weight applied before attention.
    pub attn_norm: Vec<f32>,
    /// RMSNorm weight applied before the MLP.
    pub mlp_norm: Vec<f32>,
}

/// All weights of a model, deterministically derived from a seed.
///
/// # Example
///
/// ```
/// use cocktail_model::{ModelConfig, ModelWeights};
///
/// # fn main() -> Result<(), cocktail_model::ModelError> {
/// let cfg = ModelConfig::new("demo", 32, 2, 2, 2, 64, 256, 512)?;
/// let a = ModelWeights::seeded(&cfg, 7);
/// let b = ModelWeights::seeded(&cfg, 7);
/// assert_eq!(a.embedding.shape(), (256, 32));
/// assert_eq!(a.layers.len(), 2);
/// assert_eq!(a.embedding, b.embedding); // fully deterministic
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWeights {
    /// Token embedding table, `vocab × hidden`.
    pub embedding: Matrix,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm weight.
    pub final_norm: Vec<f32>,
    /// LM head, `hidden × vocab`.
    pub lm_head: Matrix,
}

impl ModelWeights {
    /// Standard deviation used for projection initialisation. Matches the
    /// common 0.02 initialisation of GPT/Llama-family models, which keeps
    /// residual-stream activations in a numerically comfortable range.
    pub const INIT_STD: f32 = 0.02;

    /// Generates the full weight set for `config` from `seed`.
    pub fn seeded(config: &ModelConfig, seed: u64) -> Self {
        let hidden = config.hidden_dim;
        let head = config.head_dim();
        let q_dim = config.n_heads * head;
        let kv_dim = config.n_kv_heads * head;
        let inter = config.intermediate_dim;
        let std = Self::INIT_STD;

        let layers = (0..config.n_layers)
            .map(|layer| {
                let label = |part: &str| derive_seed(seed, &format!("layer{layer}/{part}"));
                LayerWeights {
                    wq: gaussian_matrix(hidden, q_dim, std, label("wq")),
                    wk: gaussian_matrix(hidden, kv_dim, std, label("wk")),
                    wv: gaussian_matrix(hidden, kv_dim, std, label("wv")),
                    wo: gaussian_matrix(q_dim, hidden, std, label("wo")),
                    w_gate: gaussian_matrix(hidden, inter, std, label("w_gate")),
                    w_up: gaussian_matrix(hidden, inter, std, label("w_up")),
                    w_down: gaussian_matrix(inter, hidden, std, label("w_down")),
                    attn_norm: norm_weight(hidden, label("attn_norm")),
                    mlp_norm: norm_weight(hidden, label("mlp_norm")),
                }
            })
            .collect();

        Self {
            embedding: gaussian_matrix(
                config.vocab_size,
                hidden,
                1.0,
                derive_seed(seed, "embedding"),
            ),
            layers,
            final_norm: norm_weight(hidden, derive_seed(seed, "final_norm")),
            lm_head: gaussian_matrix(hidden, config.vocab_size, std, derive_seed(seed, "lm_head")),
        }
    }

    /// Total number of scalar parameters actually materialised.
    pub fn parameter_count(&self) -> usize {
        let layer_params: usize = self
            .layers
            .iter()
            .map(|l| {
                l.wq.len()
                    + l.wk.len()
                    + l.wv.len()
                    + l.wo.len()
                    + l.w_gate.len()
                    + l.w_up.len()
                    + l.w_down.len()
                    + l.attn_norm.len()
                    + l.mlp_norm.len()
            })
            .sum();
        self.embedding.len() + layer_params + self.final_norm.len() + self.lm_head.len()
    }
}

/// RMSNorm weights are initialised close to one with a small seeded jitter
/// so that different layers are distinguishable but normalisation stays
/// well-conditioned.
fn norm_weight(len: usize, seed: u64) -> Vec<f32> {
    uniform_vec(len, 0.05, seed)
        .into_iter()
        .map(|v| 1.0 + v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ModelConfig {
        ModelConfig::new("t", 32, 2, 4, 2, 48, 128, 256).unwrap()
    }

    #[test]
    fn shapes_match_config() {
        let cfg = small_config();
        let w = ModelWeights::seeded(&cfg, 3);
        assert_eq!(w.embedding.shape(), (128, 32));
        assert_eq!(w.lm_head.shape(), (32, 128));
        assert_eq!(w.layers.len(), 2);
        let l = &w.layers[0];
        assert_eq!(l.wq.shape(), (32, 32));
        assert_eq!(l.wk.shape(), (32, 16)); // 2 kv heads × head_dim 8
        assert_eq!(l.wv.shape(), (32, 16));
        assert_eq!(l.wo.shape(), (32, 32));
        assert_eq!(l.w_gate.shape(), (32, 48));
        assert_eq!(l.w_down.shape(), (48, 32));
        assert_eq!(l.attn_norm.len(), 32);
    }

    #[test]
    fn weights_are_deterministic_per_seed() {
        let cfg = small_config();
        let a = ModelWeights::seeded(&cfg, 5);
        let b = ModelWeights::seeded(&cfg, 5);
        let c = ModelWeights::seeded(&cfg, 6);
        assert_eq!(a, b);
        assert_ne!(a.layers[0].wq, c.layers[0].wq);
    }

    #[test]
    fn layers_have_distinct_weights() {
        let cfg = small_config();
        let w = ModelWeights::seeded(&cfg, 7);
        assert_ne!(w.layers[0].wq, w.layers[1].wq);
        assert_ne!(w.layers[0].w_down, w.layers[1].w_down);
    }

    #[test]
    fn parameter_count_matches_config_estimate() {
        let cfg = small_config();
        let w = ModelWeights::seeded(&cfg, 9);
        assert_eq!(w.parameter_count(), cfg.parameter_count());
    }

    #[test]
    fn norm_weights_are_near_one() {
        let cfg = small_config();
        let w = ModelWeights::seeded(&cfg, 11);
        for v in &w.layers[0].attn_norm {
            assert!((*v - 1.0).abs() <= 0.05 + 1e-6);
        }
    }
}
