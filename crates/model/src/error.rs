//! Error type for the inference engine.

use std::error::Error;
use std::fmt;

/// Error raised by model construction or inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The model configuration is internally inconsistent.
    InvalidConfig(String),
    /// The prompt is empty or exceeds the model's maximum context length.
    InvalidPrompt(String),
    /// The KV cache does not match the model (layer/head/shape mismatch).
    CacheMismatch(String),
    /// An underlying tensor or quantization operation failed.
    Numeric(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfig(d) => write!(f, "invalid model configuration: {d}"),
            ModelError::InvalidPrompt(d) => write!(f, "invalid prompt: {d}"),
            ModelError::CacheMismatch(d) => write!(f, "kv cache does not match model: {d}"),
            ModelError::Numeric(d) => write!(f, "numeric operation failed: {d}"),
        }
    }
}

impl Error for ModelError {}

impl From<cocktail_tensor::ShapeError> for ModelError {
    fn from(err: cocktail_tensor::ShapeError) -> Self {
        ModelError::Numeric(err.to_string())
    }
}

impl From<cocktail_kvcache::KvCacheError> for ModelError {
    fn from(err: cocktail_kvcache::KvCacheError) -> Self {
        ModelError::CacheMismatch(err.to_string())
    }
}

impl From<cocktail_quant::QuantError> for ModelError {
    fn from(err: cocktail_quant::QuantError) -> Self {
        ModelError::Numeric(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ModelError::InvalidConfig("hidden".into())
            .to_string()
            .contains("hidden"));
        assert!(ModelError::InvalidPrompt("empty".into())
            .to_string()
            .contains("empty"));
    }

    #[test]
    fn conversions_work() {
        let err: ModelError = cocktail_tensor::ShapeError::new("matmul", "2x3").into();
        assert!(matches!(err, ModelError::Numeric(_)));
        let err: ModelError = cocktail_kvcache::KvCacheError::ZeroChunkSize.into();
        assert!(matches!(err, ModelError::CacheMismatch(_)));
        let err: ModelError = cocktail_quant::QuantError::ZeroGroupSize.into();
        assert!(matches!(err, ModelError::Numeric(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
