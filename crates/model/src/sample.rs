//! Seeded, composable sampling over the engine's logits.
//!
//! The serving layers decode greedily by default: `argmax` over the last
//! logits row, first-max-wins on ties. This module layers a classic
//! sampling chain on top — temperature → repetition/presence penalty →
//! top-k → top-p → seeded categorical draw — without touching the logits
//! arithmetic, so the byte-identity discipline the repo is built on
//! carries over:
//!
//! * The engine's logits for a request are bit-identical regardless of
//!   batch composition (per-request vocab horizon, order-independent
//!   kernels), so a per-request sampler over those logits is
//!   automatically batch-invariant.
//! * Each request owns a private [`ChaCha8Rng`] stream keyed on a caller
//!   supplied seed ([`SamplingParams::seed`]), never on engine-assigned
//!   ids or wall clock. Replaying the same request with the same seed —
//!   on another replica, after a restart, or inside a longer trace —
//!   consumes the same stream and draws the same tokens.
//!
//! The deterministic part of the chain is exposed as
//! [`filtered_distribution`] (and per-stage helpers) so conformance tests
//! can pin each stage against hand-computed distributions; the draw
//! itself is one `next_u64` per sampled token.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Temperatures below this behave as greedy argmax (no RNG consumed), so
/// `temperature: 0.0` is an exact synonym for greedy decode.
pub const GREEDY_TEMPERATURE_EPSILON: f32 = 1e-6;

/// Per-request sampling configuration.
///
/// The default constructed by [`SamplingParams::seeded`] is an identity
/// chain (temperature 1, no truncation, no penalties) over the full
/// vocabulary — i.e. plain multinomial sampling from the softmax.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SamplingParams {
    /// Softmax temperature. `0.0` (or anything below
    /// [`GREEDY_TEMPERATURE_EPSILON`]) means greedy argmax.
    pub temperature: f32,
    /// Keep only the `k` highest-logit tokens before the draw.
    pub top_k: Option<usize>,
    /// Nucleus sampling: keep the smallest prefix of the sorted
    /// distribution whose cumulative probability reaches `p`.
    pub top_p: Option<f32>,
    /// CTRL-style repetition penalty applied to tokens already generated
    /// this request: positive logits are divided by it, negative logits
    /// multiplied. `1.0` disables.
    pub repetition_penalty: f32,
    /// Flat amount subtracted from the logit of every token already
    /// generated this request. `0.0` disables.
    pub presence_penalty: f32,
    /// Seed for the per-request ChaCha draw stream. Replays with the same
    /// seed (and same logits) are bit-identical.
    pub seed: u64,
}

impl SamplingParams {
    /// An identity chain (multinomial over the full softmax) with the
    /// given draw seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            temperature: 1.0,
            top_k: None,
            top_p: None,
            repetition_penalty: 1.0,
            presence_penalty: 0.0,
            seed,
        }
    }

    /// Derives the per-request seed from a trace-level base seed and a
    /// stable request index (SplitMix64 over their combination), the same
    /// keying the traffic generator uses. Two traces with the same base
    /// seed assign each request index the same stream no matter how many
    /// other requests the trace holds.
    pub fn for_request(base_seed: u64, request_index: u64) -> Self {
        let mut z = base_seed ^ request_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self::seeded(z ^ (z >> 31))
    }

    /// Sets the softmax temperature.
    pub fn with_temperature(mut self, temperature: f32) -> Self {
        self.temperature = temperature;
        self
    }

    /// Restricts the draw to the `k` highest-logit tokens.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Enables nucleus (top-p) truncation.
    pub fn with_top_p(mut self, p: f32) -> Self {
        self.top_p = Some(p);
        self
    }

    /// Sets the repetition penalty (`1.0` disables).
    pub fn with_repetition_penalty(mut self, penalty: f32) -> Self {
        self.repetition_penalty = penalty;
        self
    }

    /// Sets the presence penalty (`0.0` disables).
    pub fn with_presence_penalty(mut self, penalty: f32) -> Self {
        self.presence_penalty = penalty;
        self
    }

    /// Replaces the draw seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks every field for validity.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (gateways answer 400 with it)
    /// when: `temperature` is negative or non-finite, `top_k` is zero,
    /// `top_p` is outside `(0, 1]` or non-finite, `repetition_penalty`
    /// is not a finite positive number, or `presence_penalty` is
    /// negative or non-finite.
    pub fn validate(&self) -> Result<(), String> {
        if !self.temperature.is_finite() || self.temperature < 0.0 {
            return Err(format!(
                "temperature must be a finite number >= 0, got {}",
                self.temperature
            ));
        }
        if self.top_k == Some(0) {
            return Err("top_k must be at least 1".to_string());
        }
        if let Some(p) = self.top_p {
            if !p.is_finite() || p <= 0.0 || p > 1.0 {
                return Err(format!("top_p must be in (0, 1], got {p}"));
            }
        }
        if !self.repetition_penalty.is_finite() || self.repetition_penalty <= 0.0 {
            return Err(format!(
                "repetition_penalty must be a finite number > 0, got {}",
                self.repetition_penalty
            ));
        }
        if !self.presence_penalty.is_finite() || self.presence_penalty < 0.0 {
            return Err(format!(
                "presence_penalty must be a finite number >= 0, got {}",
                self.presence_penalty
            ));
        }
        Ok(())
    }

    /// `true` when the chain degenerates to greedy argmax and consumes no
    /// randomness (temperature below [`GREEDY_TEMPERATURE_EPSILON`]).
    pub fn is_greedy(&self) -> bool {
        self.temperature < GREEDY_TEMPERATURE_EPSILON
    }
}

/// A per-request sampler: validated [`SamplingParams`] plus the private
/// ChaCha draw stream they seed.
#[derive(Debug, Clone)]
pub struct SamplerChain {
    params: SamplingParams,
    rng: ChaCha8Rng,
}

impl SamplerChain {
    /// Builds the chain and seeds its draw stream from `params.seed`.
    pub fn new(params: SamplingParams) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(params.seed);
        Self { params, rng }
    }

    /// The parameters this chain was built with.
    pub fn params(&self) -> &SamplingParams {
        &self.params
    }

    /// Draws the next token from `logits`, given the tokens already
    /// generated for this request (`history`, used by the penalties).
    ///
    /// Advances the chain's RNG by exactly one `u64` per call — except on
    /// the greedy path (`temperature` ≈ 0), which consumes none, so a
    /// greedy-configured chain is byte-identical to the engine's argmax.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty (the engine's vocab horizon is always
    /// at least one token).
    pub fn sample(&mut self, logits: &[f32], history: &[u32]) -> u32 {
        assert!(!logits.is_empty(), "sampler needs at least one logit");
        if self.params.is_greedy() {
            let mut penalized = logits.to_vec();
            apply_penalties(
                &mut penalized,
                history,
                self.params.repetition_penalty,
                self.params.presence_penalty,
            );
            return argmax(&penalized);
        }
        let support = filtered_distribution(logits, &self.params, history);
        let unit = self.rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
        pick(&support, unit)
    }
}

/// Greedy argmax with the engine's tie-break: the first (lowest-index)
/// maximum wins.
pub fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    let mut best_val = f32::NEG_INFINITY;
    for (i, &v) in logits.iter().enumerate() {
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    best as u32
}

/// Applies the repetition and presence penalties in place: every token id
/// in `history` has its logit divided by `repetition_penalty` when
/// positive (multiplied when negative, CTRL-style) and then reduced by
/// `presence_penalty`. Tokens outside the logits horizon are ignored.
pub fn apply_penalties(
    logits: &mut [f32],
    history: &[u32],
    repetition_penalty: f32,
    presence_penalty: f32,
) {
    if repetition_penalty == 1.0 && presence_penalty == 0.0 {
        return;
    }
    // Deduplicate so a token repeated N times is penalised once, keeping
    // the penalty magnitude independent of generation length.
    let mut seen = vec![false; logits.len()];
    for &token in history {
        let idx = token as usize;
        if idx >= logits.len() || seen[idx] {
            continue;
        }
        seen[idx] = true;
        let v = logits[idx];
        logits[idx] = if v > 0.0 {
            v / repetition_penalty
        } else {
            v * repetition_penalty
        } - presence_penalty;
    }
}

/// Divides every logit by `temperature` in place. `temperature == 1.0`
/// is a no-op; values below [`GREEDY_TEMPERATURE_EPSILON`] must be
/// handled by the caller (greedy path) and are ignored here.
pub fn apply_temperature(logits: &mut [f32], temperature: f32) {
    if temperature == 1.0 || temperature < GREEDY_TEMPERATURE_EPSILON {
        return;
    }
    for v in logits.iter_mut() {
        *v /= temperature;
    }
}

/// Sorts candidate `(token, logit)` pairs into draw order: logit
/// descending, token id ascending on ties. The deterministic order makes
/// truncation and the cumulative draw reproducible.
pub fn sort_candidates(candidates: &mut [(u32, f32)]) {
    candidates.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
}

/// Softmax over logits in draw order, accumulated in `f64` for stable
/// cumulative sums. Input must be non-empty.
pub fn softmax(logits: &[f32]) -> Vec<f64> {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f64> = logits.iter().map(|&v| f64::from(v - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

/// Keeps the smallest prefix of a draw-order-sorted probability list
/// whose cumulative mass reaches `p`, always at least one entry, and
/// renormalises the survivors to sum to one.
pub fn top_p_filter(sorted_probs: &mut Vec<(u32, f64)>, p: f32) {
    let p = f64::from(p);
    let mut cumulative = 0.0;
    let mut keep = sorted_probs.len();
    for (i, &(_, prob)) in sorted_probs.iter().enumerate() {
        cumulative += prob;
        if cumulative >= p {
            keep = i + 1;
            break;
        }
    }
    sorted_probs.truncate(keep);
    let total: f64 = sorted_probs.iter().map(|&(_, prob)| prob).sum();
    for entry in sorted_probs.iter_mut() {
        entry.1 /= total;
    }
}

/// Runs every deterministic stage of the chain — penalties, temperature,
/// top-k, softmax, top-p — and returns the resulting distribution in draw
/// order (probability descending, token id ascending on ties), summing
/// to one. The seeded draw is the only part left out, so golden-vector
/// tests can pin each stage exactly.
pub fn filtered_distribution(
    logits: &[f32],
    params: &SamplingParams,
    history: &[u32],
) -> Vec<(u32, f64)> {
    assert!(!logits.is_empty(), "sampler needs at least one logit");
    let mut working = logits.to_vec();
    apply_penalties(
        &mut working,
        history,
        params.repetition_penalty,
        params.presence_penalty,
    );
    apply_temperature(&mut working, params.temperature);
    let mut candidates: Vec<(u32, f32)> = working
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u32, v))
        .collect();
    sort_candidates(&mut candidates);
    if let Some(k) = params.top_k {
        candidates.truncate(k.max(1));
    }
    let kept_logits: Vec<f32> = candidates.iter().map(|&(_, v)| v).collect();
    let probs = softmax(&kept_logits);
    let mut support: Vec<(u32, f64)> = candidates
        .iter()
        .map(|&(token, _)| token)
        .zip(probs)
        .collect();
    if let Some(p) = params.top_p {
        top_p_filter(&mut support, p);
    }
    support
}

/// Walks the cumulative distribution (in draw order) and returns the
/// token whose interval contains `unit` ∈ [0, 1).
fn pick(support: &[(u32, f64)], unit: f64) -> u32 {
    let mut cumulative = 0.0;
    for &(token, prob) in support {
        cumulative += prob;
        if unit < cumulative {
            return token;
        }
    }
    // Floating-point shortfall at the very top of the interval: fall back
    // to the last (least likely surviving) candidate.
    support.last().map(|&(token, _)| token).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_defaults_are_the_identity_chain() {
        let params = SamplingParams::seeded(7);
        assert_eq!(params.temperature, 1.0);
        assert_eq!(params.top_k, None);
        assert_eq!(params.top_p, None);
        assert_eq!(params.repetition_penalty, 1.0);
        assert_eq!(params.presence_penalty, 0.0);
        assert!(params.validate().is_ok());
        assert!(!params.is_greedy());
    }

    #[test]
    fn for_request_is_stable_and_index_sensitive() {
        let a = SamplingParams::for_request(42, 0);
        let b = SamplingParams::for_request(42, 0);
        let c = SamplingParams::for_request(42, 1);
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn validate_rejects_bad_params() {
        assert!(SamplingParams::seeded(0)
            .with_temperature(-0.5)
            .validate()
            .is_err());
        assert!(SamplingParams::seeded(0)
            .with_temperature(f32::NAN)
            .validate()
            .is_err());
        assert!(SamplingParams::seeded(0).with_top_k(0).validate().is_err());
        assert!(SamplingParams::seeded(0)
            .with_top_p(1.5)
            .validate()
            .is_err());
        assert!(SamplingParams::seeded(0)
            .with_top_p(0.0)
            .validate()
            .is_err());
        assert!(SamplingParams::seeded(0)
            .with_repetition_penalty(0.0)
            .validate()
            .is_err());
        assert!(SamplingParams::seeded(0)
            .with_presence_penalty(-1.0)
            .validate()
            .is_err());
    }

    #[test]
    fn greedy_chain_matches_argmax_and_consumes_no_rng() {
        let logits = [0.1, 2.0, 2.0, -1.0];
        let mut chain = SamplerChain::new(SamplingParams::seeded(3).with_temperature(0.0));
        // Repeated calls keep returning the argmax (first max wins).
        assert_eq!(chain.sample(&logits, &[]), 1);
        assert_eq!(chain.sample(&logits, &[]), 1);
        // An untouched stream from the same seed matches one that served
        // greedy draws, proving no RNG words were consumed.
        let mut fresh = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(chain.rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn same_seed_replays_bit_identically() {
        let logits = [0.3, 0.1, 0.9, 0.5, -0.2];
        let params = SamplingParams::seeded(99).with_top_k(4);
        let mut first = SamplerChain::new(params.clone());
        let mut second = SamplerChain::new(params);
        let mut history = Vec::new();
        for _ in 0..32 {
            let a = first.sample(&logits, &history);
            let b = second.sample(&logits, &history);
            assert_eq!(a, b);
            history.push(a);
        }
    }

    #[test]
    fn distribution_sums_to_one_and_respects_truncation() {
        let logits = [2.0, 1.0, 0.5, 0.0, -3.0];
        let params = SamplingParams::seeded(0).with_top_k(3).with_top_p(0.95);
        let support = filtered_distribution(&logits, &params, &[]);
        assert!(support.len() <= 3);
        let total: f64 = support.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for &(token, _) in &support {
            assert!(token < 3, "top-3 logits are the first three tokens");
        }
    }
}
