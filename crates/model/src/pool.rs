//! A persistent worker pool for the engine's request-level parallelism.
//!
//! PR 3 hoisted the decode attention workers from one spawn per layer to
//! one `thread::scope` + channel pool per decode *round*; this module
//! removes the remaining per-round spawn cost. A [`WorkerPool`] is created
//! once per [`InferenceEngine`](crate::InferenceEngine) lifetime (lazily,
//! on the first batched call that can use it) and its threads then serve
//! every decode round *and* every batched prefill until the engine is
//! dropped.
//!
//! The pool is deliberately simple and deterministic: each worker owns one
//! job channel, callers assign work to workers by index (worker `i` always
//! handles the `i`-th contiguous chunk of a batch), and every job carries
//! its own result channel. Work never migrates between workers, so the
//! order in which results are stitched back together — and therefore every
//! output bit — is identical to the single-threaded loop.

use cocktail_quant::parallel::KernelPool;
use std::fmt;

/// A boxed unit of work shipped to one pool worker. Jobs own everything
/// they touch (cloned `Arc`s, moved matrices and caches) and report back
/// through a channel they capture, so no borrowed state crosses the thread
/// boundary.
pub(crate) type Job = cocktail_quant::parallel::Job;

/// A fixed set of worker threads that lives as long as its owner.
///
/// Since the kernel-parallelism PR this is a thin wrapper over the shared
/// [`KernelPool`] primitive in `cocktail_quant::parallel` — one
/// implementation of the per-worker-channel, never-respawn, deterministic-
/// assignment pool serves both the engine's request-level parallelism
/// (this type: one pool per engine) and the process-wide kernel
/// dispatcher. Dropping the pool closes every job channel, which ends the
/// worker loops; the threads are then joined so no worker outlives the
/// engine.
pub struct WorkerPool {
    inner: KernelPool,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one), each looping over its own
    /// job channel until the pool is dropped.
    pub(crate) fn new(workers: usize) -> Self {
        Self {
            inner: KernelPool::new(workers),
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.inner.workers()
    }

    /// Total threads ever spawned by this pool. The pool never re-spawns,
    /// so this equals [`WorkerPool::workers`] for the pool's whole
    /// lifetime — the property the engine tests assert to prove workers
    /// persist across decode rounds instead of being re-created per round.
    pub fn spawn_count(&self) -> usize {
        self.inner.spawn_count()
    }

    /// Ships a job to worker `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or the worker has died (a
    /// worker only exits when the pool is dropped, so a dead worker here
    /// means a previous job panicked).
    pub(crate) fn run_on(&self, index: usize, job: Job) {
        self.inner.run_on(index, job);
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("spawned", &self.spawn_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn jobs_run_on_their_assigned_worker_and_results_come_back() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        assert_eq!(pool.spawn_count(), 3);
        let (tx, rx) = mpsc::channel();
        for i in 0..3usize {
            let tx = tx.clone();
            pool.run_on(
                i,
                Box::new(move || {
                    tx.send(i * 10).expect("receiver alive");
                }),
            );
        }
        drop(tx);
        let mut results: Vec<usize> = rx.iter().collect();
        results.sort_unstable();
        assert_eq!(results, vec![0, 10, 20]);
    }

    #[test]
    fn spawn_count_is_stable_across_many_job_rounds() {
        let pool = WorkerPool::new(2);
        for _ in 0..20 {
            let (tx, rx) = mpsc::channel();
            for i in 0..2usize {
                let tx = tx.clone();
                pool.run_on(i, Box::new(move || tx.send(i).expect("receiver alive")));
            }
            drop(tx);
            assert_eq!(rx.iter().count(), 2);
        }
        assert_eq!(pool.spawn_count(), 2);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }
}
