//! Architecture hyper-parameters of a decoder-only transformer.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Architecture description of a Llama-family decoder-only transformer.
///
/// The same type is used both for the small *simulated* configurations the
/// engine actually runs and for the *full-size* dimension sheets that feed
/// the analytic hardware model, so every derived quantity (parameter count,
/// KV bytes per token) is computed from first principles here.
///
/// # Example
///
/// ```
/// use cocktail_model::ModelConfig;
///
/// # fn main() -> Result<(), cocktail_model::ModelError> {
/// let cfg = ModelConfig::new("demo", 64, 4, 4, 4, 176, 2048, 4096)?;
/// assert_eq!(cfg.head_dim(), 16);
/// assert!(cfg.parameter_count() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name (e.g. `"llama2-7b"`).
    pub name: String,
    /// Residual stream width.
    pub hidden_dim: usize,
    /// Number of decoder layers.
    pub n_layers: usize,
    /// Number of query attention heads.
    pub n_heads: usize,
    /// Number of key/value heads (equal to `n_heads` for MHA, smaller for
    /// grouped-query attention).
    pub n_kv_heads: usize,
    /// Width of the SwiGLU MLP's intermediate projection.
    pub intermediate_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum supported context length in tokens.
    pub max_context: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// RMSNorm epsilon.
    pub rms_eps: f32,
}

impl ModelConfig {
    /// Creates and validates a configuration with the standard RoPE base
    /// (10 000) and RMSNorm epsilon (1e-5).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if `hidden_dim` is not a
    /// multiple of `n_heads`, if `n_heads` is not a multiple of
    /// `n_kv_heads`, or if any dimension is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        hidden_dim: usize,
        n_layers: usize,
        n_heads: usize,
        n_kv_heads: usize,
        intermediate_dim: usize,
        vocab_size: usize,
        max_context: usize,
    ) -> Result<Self, ModelError> {
        let config = Self {
            name: name.to_string(),
            hidden_dim,
            n_layers,
            n_heads,
            n_kv_heads,
            intermediate_dim,
            vocab_size,
            max_context,
            rope_theta: 10_000.0,
            rms_eps: 1e-5,
        };
        config.validate()?;
        Ok(config)
    }

    /// Validates the internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// See [`ModelConfig::new`].
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.hidden_dim == 0
            || self.n_layers == 0
            || self.n_heads == 0
            || self.n_kv_heads == 0
            || self.intermediate_dim == 0
            || self.vocab_size == 0
            || self.max_context == 0
        {
            return Err(ModelError::InvalidConfig(
                "all dimensions must be nonzero".into(),
            ));
        }
        if self.hidden_dim % self.n_heads != 0 {
            return Err(ModelError::InvalidConfig(format!(
                "hidden_dim {} is not divisible by n_heads {}",
                self.hidden_dim, self.n_heads
            )));
        }
        if self.n_heads % self.n_kv_heads != 0 {
            return Err(ModelError::InvalidConfig(format!(
                "n_heads {} is not divisible by n_kv_heads {}",
                self.n_heads, self.n_kv_heads
            )));
        }
        if self.head_dim() % 2 != 0 {
            return Err(ModelError::InvalidConfig(format!(
                "head_dim {} must be even for RoPE",
                self.head_dim()
            )));
        }
        Ok(())
    }

    /// Dimension of a single attention head.
    pub fn head_dim(&self) -> usize {
        self.hidden_dim / self.n_heads
    }

    /// Number of query heads that share one KV head.
    pub fn gqa_group_size(&self) -> usize {
        self.n_heads / self.n_kv_heads
    }

    /// Total parameter count of the model (embedding, attention, MLP,
    /// norms and the untied LM head).
    pub fn parameter_count(&self) -> usize {
        let head = self.head_dim();
        let attn = self.hidden_dim * self.n_heads * head       // wq
            + self.hidden_dim * self.n_kv_heads * head          // wk
            + self.hidden_dim * self.n_kv_heads * head          // wv
            + self.n_heads * head * self.hidden_dim; // wo
        let mlp = 3 * self.hidden_dim * self.intermediate_dim;
        let norms = 2 * self.hidden_dim;
        let per_layer = attn + mlp + norms;
        self.vocab_size * self.hidden_dim          // embedding
            + self.n_layers * per_layer
            + self.hidden_dim                       // final norm
            + self.hidden_dim * self.vocab_size // lm head
    }

    /// Bytes occupied by the weights when stored in FP16.
    pub fn weight_bytes_fp16(&self) -> usize {
        self.parameter_count() * 2
    }

    /// Bytes of KV cache generated per token when stored in FP16:
    /// 2 tensors × layers × KV heads × head_dim × 2 bytes.
    pub fn kv_bytes_per_token_fp16(&self) -> usize {
        2 * self.n_layers * self.n_kv_heads * self.head_dim() * 2
    }

    /// Total FP16 KV-cache bytes for a sequence of `tokens` tokens.
    pub fn kv_bytes_fp16(&self, tokens: usize) -> usize {
        self.kv_bytes_per_token_fp16() * tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config_passes() {
        let cfg = ModelConfig::new("t", 64, 2, 4, 2, 128, 1000, 2048).unwrap();
        assert_eq!(cfg.head_dim(), 16);
        assert_eq!(cfg.gqa_group_size(), 2);
    }

    #[test]
    fn rejects_indivisible_heads() {
        assert!(ModelConfig::new("t", 60, 2, 7, 7, 128, 1000, 2048).is_err());
        assert!(ModelConfig::new("t", 64, 2, 4, 3, 128, 1000, 2048).is_err());
    }

    #[test]
    fn rejects_zero_dims() {
        assert!(ModelConfig::new("t", 0, 2, 4, 4, 128, 1000, 2048).is_err());
        assert!(ModelConfig::new("t", 64, 0, 4, 4, 128, 1000, 2048).is_err());
        assert!(ModelConfig::new("t", 64, 2, 4, 4, 128, 0, 2048).is_err());
    }

    #[test]
    fn rejects_odd_head_dim() {
        // hidden 12 / 4 heads = head_dim 3, odd -> RoPE impossible.
        assert!(ModelConfig::new("t", 12, 1, 4, 4, 16, 100, 64).is_err());
    }

    #[test]
    fn llama2_7b_full_size_parameter_count_is_about_7b() {
        let cfg = ModelConfig::new("llama2-7b", 4096, 32, 32, 32, 11008, 32000, 4096).unwrap();
        let params = cfg.parameter_count() as f64;
        assert!(
            (6.5e9..7.5e9).contains(&params),
            "expected ~7e9 parameters, got {params}"
        );
    }

    #[test]
    fn kv_bytes_per_token_matches_paper_scale() {
        // Llama2-13B: 2 * 40 layers * 40 heads * 128 dim * 2 bytes ≈ 820 KB per
        // token; a 128K context is then ~100 GB, the number quoted in the
        // paper's introduction.
        let cfg = ModelConfig::new("llama2-13b", 5120, 40, 40, 40, 13824, 32000, 4096).unwrap();
        let per_token = cfg.kv_bytes_per_token_fp16();
        assert_eq!(per_token, 2 * 40 * 40 * 128 * 2);
        let gb_128k = cfg.kv_bytes_fp16(128 * 1024) as f64 / 1e9;
        assert!(
            (90.0..115.0).contains(&gb_128k),
            "expected ~100 GB for a 128K context, got {gb_128k:.1} GB"
        );
    }

    #[test]
    fn gqa_reduces_kv_bytes() {
        let mha = ModelConfig::new("mha", 4096, 32, 32, 32, 11008, 32000, 4096).unwrap();
        let gqa = ModelConfig::new("gqa", 4096, 32, 32, 8, 14336, 32000, 32768).unwrap();
        assert_eq!(
            gqa.kv_bytes_per_token_fp16() * 4,
            mha.kv_bytes_per_token_fp16()
        );
    }
}
