//! Simulated model profiles mirroring the four models of the paper.

use crate::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// A pair of configurations describing one of the paper's evaluation
/// models: a small *simulated* configuration that the CPU engine actually
/// runs, and the *full-size* dimension sheet of the original checkpoint
/// used by the analytic hardware model.
///
/// The simulated configurations preserve the architectural features that
/// matter for KV-cache behaviour — layer-count ratios between models, MHA
/// versus grouped-query attention, and the 4K versus 32K context limits —
/// at a width small enough for CPU inference.
///
/// # Example
///
/// ```
/// use cocktail_model::ModelProfile;
///
/// let mistral = ModelProfile::mistral_7b_sim();
/// assert!(mistral.sim().n_kv_heads < mistral.sim().n_heads); // GQA
/// assert_eq!(mistral.full().max_context, 32 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    sim: ModelConfig,
    full: ModelConfig,
    seed: u64,
}

impl ModelProfile {
    /// Builds a profile from explicit simulated and full-size
    /// configurations and a weight seed.
    pub fn custom(sim: ModelConfig, full: ModelConfig, seed: u64) -> Self {
        Self { sim, full, seed }
    }

    /// Simulated stand-in for **Llama2-7B** (32 layers, MHA, 4K context).
    pub fn llama2_7b_sim() -> Self {
        Self {
            sim: ModelConfig::new("llama2-7b-sim", 64, 4, 4, 4, 176, 2048, 4096)
                .expect("profile config is valid"),
            full: ModelConfig::new("llama2-7b", 4096, 32, 32, 32, 11008, 32000, 4096)
                .expect("profile config is valid"),
            seed: 0x011A_A207,
        }
    }

    /// Simulated stand-in for **Llama2-13B** (40 layers, MHA, 4K context).
    pub fn llama2_13b_sim() -> Self {
        Self {
            sim: ModelConfig::new("llama2-13b-sim", 80, 5, 5, 5, 220, 2048, 4096)
                .expect("profile config is valid"),
            full: ModelConfig::new("llama2-13b", 5120, 40, 40, 40, 13824, 32000, 4096)
                .expect("profile config is valid"),
            seed: 0x011A_A213,
        }
    }

    /// Simulated stand-in for **Mistral-7B** (32 layers, grouped-query
    /// attention with 8 KV heads, 32K context).
    pub fn mistral_7b_sim() -> Self {
        Self {
            sim: ModelConfig::new("mistral-7b-sim", 64, 4, 8, 2, 176, 2048, 32 * 1024)
                .expect("profile config is valid"),
            full: ModelConfig::new("mistral-7b", 4096, 32, 32, 8, 14336, 32000, 32 * 1024)
                .expect("profile config is valid"),
            seed: 0x0007_1507,
        }
    }

    /// Simulated stand-in for **Longchat-7B** (Llama architecture fine-tuned
    /// for 32K chat contexts).
    pub fn longchat_7b_sim() -> Self {
        Self {
            sim: ModelConfig::new("longchat-7b-sim", 64, 4, 4, 4, 176, 2048, 32 * 1024)
                .expect("profile config is valid"),
            full: ModelConfig::new("longchat-7b", 4096, 32, 32, 32, 11008, 32000, 32 * 1024)
                .expect("profile config is valid"),
            seed: 0x10_c4a7,
        }
    }

    /// The four profiles evaluated in the paper, in the order of Table II.
    pub fn paper_suite() -> Vec<ModelProfile> {
        vec![
            Self::llama2_7b_sim(),
            Self::llama2_13b_sim(),
            Self::mistral_7b_sim(),
            Self::longchat_7b_sim(),
        ]
    }

    /// A deliberately tiny profile for fast unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            sim: ModelConfig::new("tiny", 32, 2, 2, 2, 64, 512, 1024)
                .expect("profile config is valid"),
            full: ModelConfig::new("tiny-full", 32, 2, 2, 2, 64, 512, 1024)
                .expect("profile config is valid"),
            seed: 0x717,
        }
    }

    /// The simulated (runnable) configuration.
    pub fn sim(&self) -> &ModelConfig {
        &self.sim
    }

    /// The full-size dimension sheet of the original checkpoint.
    pub fn full(&self) -> &ModelConfig {
        &self.full
    }

    /// Seed used for the deterministic weight initialisation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Display name (taken from the full-size configuration).
    pub fn name(&self) -> &str {
        &self.full.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_has_four_models_in_table_order() {
        let suite = ModelProfile::paper_suite();
        let names: Vec<&str> = suite.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["llama2-7b", "llama2-13b", "mistral-7b", "longchat-7b"]
        );
    }

    #[test]
    fn all_profiles_validate() {
        for profile in ModelProfile::paper_suite() {
            profile.sim().validate().unwrap();
            profile.full().validate().unwrap();
        }
        ModelProfile::tiny().sim().validate().unwrap();
    }

    #[test]
    fn full_size_13b_is_larger_than_7b() {
        let p7 = ModelProfile::llama2_7b_sim();
        let p13 = ModelProfile::llama2_13b_sim();
        assert!(p13.full().parameter_count() > p7.full().parameter_count());
        assert!(p13.sim().parameter_count() > p7.sim().parameter_count());
    }

    #[test]
    fn mistral_uses_gqa_and_long_context() {
        let m = ModelProfile::mistral_7b_sim();
        assert_eq!(m.full().n_kv_heads, 8);
        assert_eq!(m.full().max_context, 32 * 1024);
        assert!(m.sim().gqa_group_size() > 1);
    }

    #[test]
    fn long_context_models_report_32k() {
        assert_eq!(
            ModelProfile::longchat_7b_sim().full().max_context,
            32 * 1024
        );
        assert_eq!(ModelProfile::llama2_7b_sim().full().max_context, 4096);
    }

    #[test]
    fn seeds_differ_between_profiles() {
        let seeds: Vec<u64> = ModelProfile::paper_suite()
            .iter()
            .map(|p| p.seed())
            .collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }
}
