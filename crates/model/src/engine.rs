//! The inference engine: prefill and decode phases over a chunked KV cache.

use crate::config::ModelConfig;
use crate::error::ModelError;
use crate::pool::WorkerPool;
use crate::profile::ModelProfile;
use crate::tokenizer::Tokenizer;
use crate::weights::{LayerWeights, ModelWeights};
use cocktail_kvcache::{ChunkSegmentation, ChunkedKvCache, ChunkedLayerCache, SharedPrefixKv};
use cocktail_quant::parallel as kernel_parallel;
use cocktail_tensor::ops::{causal_mask, rms_norm_rows, rope_rows, silu};
use cocktail_tensor::Matrix;
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};

/// Raw (unquantized) key/value tensors of one (layer, KV-head) pair
/// produced by the prefill phase, shape `(tokens, head_dim)` each.
#[derive(Debug, Clone, PartialEq)]
pub struct RawKv {
    /// Key tensor after rotary position embedding.
    pub k: Matrix,
    /// Value tensor.
    pub v: Matrix,
}

/// Everything the prefill phase produces.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefillOutput {
    /// Raw per-layer, per-KV-head key/value tensors (`[layer][kv_head]`).
    pub kv: Vec<Vec<RawKv>>,
    /// Final-norm hidden states of every prompt token, `(tokens, hidden)`.
    pub hidden: Matrix,
    /// Logits of the token following the prompt.
    pub last_logits: Vec<f32>,
}

impl PrefillOutput {
    /// Greedy next token after the prompt.
    pub fn next_token(&self) -> u32 {
        argmax(&self.last_logits)
    }
}

/// Result of a single decode step.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeStep {
    /// Logits over the vocabulary for the next position.
    pub logits: Vec<f32>,
    /// Greedy argmax of the logits.
    pub next_token: u32,
}

/// One request's slot in a batched decode step: the token it is processing,
/// the token's absolute position in that request's sequence, and the
/// request's own KV cache.
#[derive(Debug)]
pub struct DecodeSlot<'a> {
    /// Token id to process.
    pub token: u32,
    /// Absolute position of `token` within the request's sequence.
    pub pos: usize,
    /// The request's chunked KV cache; the token's KV is appended to it.
    pub cache: &'a mut ChunkedKvCache,
}

/// One request's slot in a batched prefill: the full prompt tokens plus an
/// optional shared-prefix handle covering the leading `prefix_len` tokens,
/// whose KV is reused instead of recomputed.
#[derive(Debug, Clone)]
pub struct PrefillSlot<'a> {
    /// The full prompt token sequence (prefix included).
    pub tokens: &'a [u32],
    /// Cached raw KV blocks covering (at least) the first `prefix_len`
    /// prompt tokens; `None` for a cold prefill.
    pub prefix: Option<&'a SharedPrefixKv>,
    /// How many leading prompt tokens are served from `prefix`. Must be
    /// `0` when `prefix` is `None`, and strictly smaller than the prompt
    /// length otherwise (the engine always computes at least one row, which
    /// produces the next-token logits).
    pub prefix_len: usize,
}

impl<'a> PrefillSlot<'a> {
    /// A cold prefill of the whole prompt.
    pub fn cold(tokens: &'a [u32]) -> Self {
        Self {
            tokens,
            prefix: None,
            prefix_len: 0,
        }
    }

    /// A prefill reusing the first `prefix_len` tokens from cached blocks.
    pub fn with_prefix(tokens: &'a [u32], prefix: &'a SharedPrefixKv, prefix_len: usize) -> Self {
        Self {
            tokens,
            prefix: Some(prefix),
            prefix_len,
        }
    }

    /// Number of prompt tokens actually computed (not served from cache).
    pub fn suffix_len(&self) -> usize {
        self.tokens.len().saturating_sub(self.prefix_len)
    }
}

/// What one slot of a batched prefill produces: the raw KV rows of the
/// *computed* (non-reused) prompt suffix, its final-norm hidden states, and
/// the next-token logits.
///
/// Together with the reused prefix blocks, `suffix_kv` covers the whole
/// prompt, and every row is bit-identical to the same row of a cold
/// [`InferenceEngine::prefill`] of the full prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPrefill {
    /// How many leading prompt tokens were served from cached blocks.
    pub prefix_len: usize,
    /// Raw per-layer, per-KV-head key/value tensors of the computed suffix
    /// (`[layer][kv_head]`, `suffix_len` rows each).
    pub suffix_kv: Vec<Vec<RawKv>>,
    /// Final-norm hidden states of the computed suffix, `(suffix_len,
    /// hidden)`.
    pub hidden: Matrix,
    /// Logits of the token following the prompt.
    pub last_logits: Vec<f32>,
}

impl BatchPrefill {
    /// Greedy next token after the prompt.
    pub fn next_token(&self) -> u32 {
        argmax(&self.last_logits)
    }

    /// Number of computed suffix rows.
    pub fn suffix_len(&self) -> usize {
        self.hidden.rows()
    }
}

/// The compute core shared between the main thread and the persistent
/// worker pool: the model configuration and weights, plus every per-request
/// attention routine the pool workers execute. Held behind an [`Arc`] so
/// jobs shipped to pool threads can reference the weights without copying
/// (or borrowing across the thread boundary).
#[derive(Debug)]
struct EngineShared {
    config: ModelConfig,
    weights: ModelWeights,
}

impl EngineShared {
    fn attention_scale(&self) -> f32 {
        1.0 / (self.config.head_dim() as f32).sqrt()
    }

    /// One layer's attention-input projections: RMS-norms `x` and streams
    /// the QKV weights once for every row in the batch.
    fn layer_qkv(
        &self,
        layer: &LayerWeights,
        x: &Matrix,
    ) -> Result<(Matrix, Matrix, Matrix), ModelError> {
        let mut normed = x.clone();
        rms_norm_rows(&mut normed, &layer.attn_norm, self.config.rms_eps);
        Ok((
            normed.matmul(&layer.wq)?,
            normed.matmul(&layer.wk)?,
            normed.matmul(&layer.wv)?,
        ))
    }

    /// Merges the per-request attention rows back into the residual stream
    /// and runs the layer's SwiGLU MLP (weights streamed once per batch).
    fn finish_layer(
        &self,
        layer: &LayerWeights,
        x: &mut Matrix,
        attn_rows: Vec<Matrix>,
    ) -> Result<(), ModelError> {
        let attn_refs: Vec<&Matrix> = attn_rows.iter().collect();
        let attn = Matrix::concat_rows(&attn_refs)?;
        x.add_assign(&attn.matmul(&layer.wo)?)?;

        let mut normed2 = x.clone();
        rms_norm_rows(&mut normed2, &layer.mlp_norm, self.config.rms_eps);
        let gate = normed2.matmul(&layer.w_gate)?;
        let up = normed2.matmul(&layer.w_up)?;
        let mut fused = gate;
        for (g, u) in fused.as_mut_slice().iter_mut().zip(up.as_slice()) {
            *g = silu(*g) * u;
        }
        x.add_assign(&fused.matmul(&layer.w_down)?)?;
        Ok(())
    }

    /// RoPE-rotates and appends one request's token KV to its cache, then
    /// computes its decode attention for one layer: the per-request section
    /// of a batched decode step. The arithmetic is exactly the single-
    /// request [`InferenceEngine::decode_step`] path, so results never
    /// depend on the batch composition — or on which pool worker ran it.
    fn token_attention(
        &self,
        layer_idx: usize,
        cache: &mut ChunkedKvCache,
        pos: usize,
        q_row: &Matrix,
        k_row: &Matrix,
        v_row: &Matrix,
    ) -> Result<Matrix, ModelError> {
        let head = self.config.head_dim();
        let scale = self.attention_scale();
        // Append this token's KV to every KV-head cache first so the token
        // attends to itself, as in standard causal decoding.
        for j in 0..self.config.n_kv_heads {
            let mut k_j = k_row.slice_cols(j * head, (j + 1) * head);
            rope_rows(&mut k_j, pos, self.config.rope_theta);
            let v_j = v_row.slice_cols(j * head, (j + 1) * head);
            let entry = cache.get_mut(layer_idx, j).ok_or_else(|| {
                ModelError::CacheMismatch(format!(
                    "cache slot (layer {layer_idx}, head {j}) is not populated"
                ))
            })?;
            entry.append_decode_token(k_j.row(0), v_j.row(0))?;
        }
        let mut head_outputs = Vec::with_capacity(self.config.n_heads);
        for h in 0..self.config.n_heads {
            let mut q_h = q_row.slice_cols(h * head, (h + 1) * head);
            rope_rows(&mut q_h, pos, self.config.rope_theta);
            let kv_head = h / self.config.gqa_group_size();
            let entry = cache.get(layer_idx, kv_head).ok_or_else(|| {
                ModelError::CacheMismatch(format!(
                    "cache slot (layer {layer_idx}, head {kv_head}) is not populated"
                ))
            })?;
            let attn = entry.attend(&q_h, scale)?;
            head_outputs.push(attn.output);
        }
        let head_refs: Vec<&Matrix> = head_outputs.iter().collect();
        Matrix::concat_cols(&head_refs).map_err(ModelError::from)
    }

    /// The per-slot attention of one prefill layer: RoPE the slot's suffix
    /// K per KV head, assemble `[reused prefix ++ suffix]` K/V, and run
    /// causal attention for every query head. Returns the concatenated
    /// attention rows plus this layer's per-KV-head suffix KV. Pure
    /// per-slot arithmetic, so it can run inline or on any pool worker with
    /// bit-identical output.
    fn prefill_slot_attention(
        &self,
        layer_idx: usize,
        prompt_len: usize,
        prefix: Option<(&SharedPrefixKv, usize)>,
        q_s: &Matrix,
        k_s: &Matrix,
        v_s: &Matrix,
    ) -> Result<(Matrix, Vec<RawKv>), ModelError> {
        let head = self.config.head_dim();
        let scale = self.attention_scale();
        let prefix_len = prefix.map_or(0, |(_, len)| len);
        let suffix_len = prompt_len - prefix_len;

        let (layer_kv, full) = self.prefill_slot_kv(layer_idx, prefix, k_s, v_s)?;

        // Causal mask over the whole prompt for the suffix query block:
        // query row i (absolute position prefix_len + i) sees every prefix
        // key and suffix keys up to itself.
        let mask = causal_mask(suffix_len, prompt_len);
        let mut head_outputs = Vec::with_capacity(self.config.n_heads);
        for h in 0..self.config.n_heads {
            let mut q_h = q_s.slice_cols(h * head, (h + 1) * head);
            rope_rows(&mut q_h, prefix_len, self.config.rope_theta);
            let j = h / self.config.gqa_group_size();
            let (k_ref, v_ref): (&Matrix, &Matrix) = match &full {
                Some(pairs) => (&pairs[j].0, &pairs[j].1),
                None => (&layer_kv[j].k, &layer_kv[j].v),
            };
            let mut scores = q_h.matmul_transposed(k_ref)?;
            scores.scale_in_place(scale);
            let probs = scores.masked_softmax(&mask)?;
            head_outputs.push(probs.matmul(v_ref)?);
        }
        let head_refs: Vec<&Matrix> = head_outputs.iter().collect();
        let attn = Matrix::concat_cols(&head_refs)?;
        Ok((attn, layer_kv))
    }

    /// Shared prologue of the scalar and head-parallel prefill attention
    /// paths: per-KV-head RoPE'd suffix K/V, plus (when resuming from a
    /// shared prefix) the full `[prefix ++ suffix]` K/V pairs.
    #[allow(clippy::type_complexity)]
    fn prefill_slot_kv(
        &self,
        layer_idx: usize,
        prefix: Option<(&SharedPrefixKv, usize)>,
        k_s: &Matrix,
        v_s: &Matrix,
    ) -> Result<(Vec<RawKv>, Option<Vec<(Matrix, Matrix)>>), ModelError> {
        let head = self.config.head_dim();
        let prefix_len = prefix.map_or(0, |(_, len)| len);

        // Per-KV-head suffix K/V with RoPE at the suffix positions.
        let mut layer_kv = Vec::with_capacity(self.config.n_kv_heads);
        for j in 0..self.config.n_kv_heads {
            let mut k_j = k_s.slice_cols(j * head, (j + 1) * head);
            rope_rows(&mut k_j, prefix_len, self.config.rope_theta);
            let v_j = v_s.slice_cols(j * head, (j + 1) * head);
            layer_kv.push(RawKv { k: k_j, v: v_j });
        }

        // Full per-KV-head K/V: reused prefix rows (already RoPE-rotated at
        // their absolute positions when they were first computed) followed
        // by this layer's suffix rows.
        let full: Option<Vec<(Matrix, Matrix)>> = match prefix {
            Some((shared, len)) if len > 0 => {
                let mut pairs = Vec::with_capacity(self.config.n_kv_heads);
                for (j, kv_j) in layer_kv.iter().enumerate() {
                    let block = shared.block(layer_idx, j);
                    let pk = block.k().slice_rows(0, len);
                    let pv = block.v().slice_rows(0, len);
                    pairs.push((
                        Matrix::concat_rows(&[&pk, &kv_j.k])?,
                        Matrix::concat_rows(&[&pv, &kv_j.v])?,
                    ));
                }
                Some(pairs)
            }
            _ => None,
        };
        Ok((layer_kv, full))
    }

    /// Chooses between the scalar and head-parallel prefill attention for
    /// one slot based on the kernel-thread setting and the attention work
    /// size (score multiply-adds across all heads). Used only by the
    /// *inline* prefill path: when slots already run on the engine's
    /// worker pool, per-slot attention stays scalar so the two pools never
    /// nest.
    fn prefill_slot_attention_dispatch(
        &self,
        layer_idx: usize,
        prompt_len: usize,
        prefix: Option<(&SharedPrefixKv, usize)>,
        q_s: &Matrix,
        k_s: &Matrix,
        v_s: &Matrix,
    ) -> Result<(Matrix, Vec<RawKv>), ModelError> {
        let suffix_len = prompt_len - prefix.map_or(0, |(_, len)| len);
        let score_work = suffix_len * prompt_len * self.config.hidden_dim;
        if self.config.n_heads > 1 && kernel_parallel::should_parallelize(score_work) {
            self.prefill_slot_attention_parallel(layer_idx, prompt_len, prefix, q_s, k_s, v_s)
        } else {
            self.prefill_slot_attention(layer_idx, prompt_len, prefix, q_s, k_s, v_s)
        }
    }

    /// Head-parallel prefill attention: the same per-head score → masked
    /// softmax → AV blocks as [`EngineShared::prefill_slot_attention`],
    /// with each head's block running as one job on the shared kernel pool
    /// and the outputs stitched in head order. Per-head arithmetic is
    /// untouched, so the result is bit-identical to the scalar loop.
    fn prefill_slot_attention_parallel(
        &self,
        layer_idx: usize,
        prompt_len: usize,
        prefix: Option<(&SharedPrefixKv, usize)>,
        q_s: &Matrix,
        k_s: &Matrix,
        v_s: &Matrix,
    ) -> Result<(Matrix, Vec<RawKv>), ModelError> {
        let head = self.config.head_dim();
        let scale = self.attention_scale();
        let theta = self.config.rope_theta;
        let gqa = self.config.gqa_group_size();
        let prefix_len = prefix.map_or(0, |(_, len)| len);
        let suffix_len = prompt_len - prefix_len;

        let (layer_kv, full) = self.prefill_slot_kv(layer_idx, prefix, k_s, v_s)?;

        // Jobs must own their inputs, so share one K/V pair list: the full
        // `[prefix ++ suffix]` pairs when resuming, else clones of the
        // suffix KV (cheap relative to the attention itself, which is why
        // the dispatch gate only sends large slots here).
        let kv_pairs: Arc<Vec<(Matrix, Matrix)>> = Arc::new(match full {
            Some(pairs) => pairs,
            None => layer_kv
                .iter()
                .map(|kv| (kv.k.clone(), kv.v.clone()))
                .collect(),
        });
        let mask = Arc::new(causal_mask(suffix_len, prompt_len));
        let jobs: Vec<_> = (0..self.config.n_heads)
            .map(|h| {
                let mut q_h = q_s.slice_cols(h * head, (h + 1) * head);
                let kv_pairs = Arc::clone(&kv_pairs);
                let mask = Arc::clone(&mask);
                move || -> Result<Matrix, ModelError> {
                    rope_rows(&mut q_h, prefix_len, theta);
                    let (k_ref, v_ref) = &kv_pairs[h / gqa];
                    let mut scores = q_h.matmul_transposed(k_ref)?;
                    scores.scale_in_place(scale);
                    let probs = scores.masked_softmax(&mask)?;
                    probs.matmul(v_ref).map_err(ModelError::from)
                }
            })
            .collect();
        let head_outputs = kernel_parallel::run_jobs(jobs)
            .into_iter()
            .collect::<Result<Vec<_>, ModelError>>()?;
        let head_refs: Vec<&Matrix> = head_outputs.iter().collect();
        let attn = Matrix::concat_cols(&head_refs)?;
        Ok((attn, layer_kv))
    }
}

/// The caches (and token positions) of one worker's contiguous chunk of a
/// decode batch. Ownership of the caches is taken from the borrowed slots
/// at the start of a round, ping-pongs between the main thread and the
/// chunk's worker once per layer, and returns to the slots when the round
/// ends.
struct DecodeChunk {
    caches: Vec<ChunkedKvCache>,
    positions: Vec<usize>,
}

/// Prefix metadata of one prefill slot, in an owned form a pool job can
/// capture (the [`SharedPrefixKv`] handle is a refcount bump, not a copy).
#[derive(Clone)]
struct PrefillSlotMeta {
    prompt_len: usize,
    prefix: Option<(SharedPrefixKv, usize)>,
}

impl PrefillSlotMeta {
    fn prefix_ref(&self) -> Option<(&SharedPrefixKv, usize)> {
        self.prefix.as_ref().map(|(kv, len)| (kv, *len))
    }

    fn prefix_len(&self) -> usize {
        self.prefix.as_ref().map_or(0, |(_, len)| *len)
    }
}

/// A decoder-only transformer inference engine with deterministic seeded
/// weights and a pluggable chunked KV cache.
///
/// The engine separates the two phases exactly as the paper describes:
/// [`InferenceEngine::prefill`] runs full causal attention over the prompt
/// in FP32 and returns the raw per-layer KV tensors;
/// [`InferenceEngine::build_cache`] segments those tensors into a
/// [`ChunkedKvCache`]; a quantization policy (baseline or Cocktail) then
/// rewrites the cache in place; and [`InferenceEngine::decode_step`] /
/// [`InferenceEngine::generate_with_cache`] run decode-phase attention over
/// the (possibly quantized, possibly reordered) cache.
///
/// On multi-core hosts the engine owns a **persistent worker pool**
/// ([`WorkerPool`]): the threads are spawned once, on the first batched
/// call that can use them, and then serve every decode round *and* every
/// batched prefill for the engine's whole lifetime —
/// [`InferenceEngine::pool_spawn_count`] stays at the worker count however
/// many rounds run. Work is assigned to workers by contiguous chunk index
/// and stitched back in order, so pooled outputs are bit-identical to the
/// single-threaded loop.
///
/// # Example
///
/// ```
/// use cocktail_model::{InferenceEngine, ModelProfile};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = InferenceEngine::new(ModelProfile::tiny())?;
/// let prompt = engine.tokenizer().encode("alpha beta gamma delta epsilon zeta");
/// let prefill = engine.prefill(&prompt)?;
/// let mut cache = engine.build_cache(&prefill, 2)?;
/// let generated = engine.generate_with_cache(&prefill, &mut cache, 4)?;
/// assert_eq!(generated.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct InferenceEngine {
    shared: Arc<EngineShared>,
    tokenizer: Tokenizer,
    seed: u64,
    pool: OnceLock<WorkerPool>,
}

impl InferenceEngine {
    /// Builds an engine from a [`ModelProfile`], using its simulated
    /// configuration and weight seed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if the profile's configuration
    /// fails validation.
    pub fn new(profile: ModelProfile) -> Result<Self, ModelError> {
        Self::from_config(profile.sim().clone(), profile.seed())
    }

    /// Builds an engine from an explicit configuration and weight seed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn from_config(config: ModelConfig, seed: u64) -> Result<Self, ModelError> {
        config.validate()?;
        let weights = ModelWeights::seeded(&config, seed);
        let tokenizer = Tokenizer::new(config.vocab_size);
        Ok(Self {
            shared: Arc::new(EngineShared { config, weights }),
            tokenizer,
            seed,
            pool: OnceLock::new(),
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.shared.config
    }

    /// The engine's tokenizer.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// The engine's weights (read-only).
    pub fn weights(&self) -> &ModelWeights {
        &self.shared.weights
    }

    /// The seed the weights were generated from. Engines built from the
    /// same configuration and seed have bit-identical weights, so KV rows
    /// snapshotted under one are valid under the other — a snapshot
    /// fingerprint must therefore include this value.
    pub fn weight_seed(&self) -> u64 {
        self.seed
    }

    /// The number of worker threads the engine would use for batched work:
    /// the host's available parallelism (the pool is sized once, at first
    /// use).
    pub fn pool_workers(&self) -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Total pool threads spawned over this engine's lifetime: `0` before
    /// the first batched call (or forever, on a single-core host), and
    /// exactly the worker count afterwards — the pool persists across
    /// decode rounds and prefills instead of re-spawning per round.
    pub fn pool_spawn_count(&self) -> usize {
        self.pool.get().map_or(0, WorkerPool::spawn_count)
    }

    /// The persistent pool, spawned on first use.
    fn pool(&self) -> &WorkerPool {
        self.pool
            .get_or_init(|| WorkerPool::new(self.pool_workers()))
    }

    fn embed(&self, tokens: &[u32]) -> Result<Matrix, ModelError> {
        let vocab = self.shared.config.vocab_size;
        for &t in tokens {
            if t as usize >= vocab {
                return Err(ModelError::InvalidPrompt(format!(
                    "token id {t} exceeds vocabulary size {vocab}"
                )));
            }
        }
        let indices: Vec<usize> = tokens.iter().map(|&t| t as usize).collect();
        Ok(self.shared.weights.embedding.gather_rows(&indices))
    }

    /// Runs the prefill phase over `tokens` (full causal attention in FP32)
    /// and returns the raw KV tensors, hidden states and next-token logits.
    ///
    /// Implemented as a cold [`InferenceEngine::prefill_batch`] of one, so
    /// single prefills, batched prefills and prefix-reusing prefills all go
    /// through the same row-wise arithmetic and stay bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPrompt`] if the prompt is empty, longer
    /// than the model's maximum context, or contains out-of-vocabulary ids.
    pub fn prefill(&self, tokens: &[u32]) -> Result<PrefillOutput, ModelError> {
        let mut batch = self.prefill_batch(&[PrefillSlot::cold(tokens)])?;
        let one = batch.pop().expect("batch of one yields one prefill");
        Ok(PrefillOutput {
            kv: one.suffix_kv,
            last_logits: one.last_logits,
            hidden: one.hidden,
        })
    }

    /// Validates one prefill slot against the model.
    fn validate_prefill_slot(&self, slot: &PrefillSlot<'_>) -> Result<(), ModelError> {
        let config = &self.shared.config;
        if slot.tokens.is_empty() {
            return Err(ModelError::InvalidPrompt("prompt is empty".into()));
        }
        if slot.tokens.len() > config.max_context {
            return Err(ModelError::InvalidPrompt(format!(
                "prompt of {} tokens exceeds max context {}",
                slot.tokens.len(),
                config.max_context
            )));
        }
        match slot.prefix {
            None => {
                if slot.prefix_len != 0 {
                    return Err(ModelError::CacheMismatch(
                        "prefix_len set without prefix blocks".into(),
                    ));
                }
            }
            Some(prefix) => {
                if prefix.layers() != config.n_layers || prefix.kv_heads() != config.n_kv_heads {
                    return Err(ModelError::CacheMismatch(format!(
                        "prefix has {}x{} blocks, model needs {}x{}",
                        prefix.layers(),
                        prefix.kv_heads(),
                        config.n_layers,
                        config.n_kv_heads
                    )));
                }
                if prefix.block(0, 0).k().cols() != config.head_dim() {
                    return Err(ModelError::CacheMismatch(format!(
                        "prefix head dim {} vs model head dim {}",
                        prefix.block(0, 0).k().cols(),
                        config.head_dim()
                    )));
                }
                if slot.prefix_len > prefix.tokens() || slot.prefix_len >= slot.tokens.len() {
                    return Err(ModelError::InvalidPrompt(format!(
                        "prefix_len {} out of range for a {}-token prompt with {} cached tokens",
                        slot.prefix_len,
                        slot.tokens.len(),
                        prefix.tokens()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Runs the prefill phase for a whole batch of independent prompts,
    /// optionally resuming each from cached shared-prefix KV blocks.
    ///
    /// The computed suffix rows of every slot are stacked into one hidden
    /// matrix, so the weight-streaming work — QKV projections, MLP, LM
    /// head — is paid once per batch, exactly as
    /// [`InferenceEngine::decode_step_batch`] does for decode. Attention is
    /// per slot: each slot's suffix queries attend over its reused prefix
    /// keys (read from the shared blocks) followed by its own suffix keys,
    /// under the standard causal mask; with more than one slot on a
    /// multi-core host, the per-slot attention runs on the engine's
    /// persistent worker pool. Because prefill is causal and every shared
    /// op is row-wise, each computed row is bit-identical to the same row
    /// of a cold single-prompt [`InferenceEngine::prefill`] — reusing a
    /// prefix, batching prompts, or pooling workers never changes any
    /// output.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPrompt`] for an empty/oversized prompt
    /// or an out-of-range `prefix_len`, and [`ModelError::CacheMismatch`]
    /// if a slot's prefix blocks do not match the model layout.
    pub fn prefill_batch(
        &self,
        slots: &[PrefillSlot<'_>],
    ) -> Result<Vec<BatchPrefill>, ModelError> {
        if slots.is_empty() {
            return Ok(Vec::new());
        }
        for slot in slots {
            self.validate_prefill_slot(slot)?;
        }

        // Row ranges of each slot's computed suffix within the stacked
        // hidden matrix.
        let mut offsets = Vec::with_capacity(slots.len());
        let mut total_rows = 0usize;
        for slot in slots {
            offsets.push(total_rows);
            total_rows += slot.suffix_len();
        }
        let stacked: Vec<u32> = slots
            .iter()
            .flat_map(|s| s.tokens[s.prefix_len..].iter().copied())
            .collect();
        let mut x = self.embed(&stacked)?;
        let metas: Vec<PrefillSlotMeta> = slots
            .iter()
            .map(|slot| PrefillSlotMeta {
                prompt_len: slot.tokens.len(),
                prefix: slot.prefix.map(|kv| (kv.clone(), slot.prefix_len)),
            })
            .collect();
        let mut kv_per_slot: Vec<Vec<Vec<RawKv>>> = slots
            .iter()
            .map(|_| Vec::with_capacity(self.shared.config.n_layers))
            .collect();

        let workers = self.pool_workers().min(slots.len());
        for (layer_idx, layer) in self.shared.weights.layers.iter().enumerate() {
            let (q_all, k_all, v_all) = self.shared.layer_qkv(layer, &x)?;
            let per_slot = if workers > 1 {
                self.prefill_layer_pooled(
                    layer_idx, &metas, &offsets, &q_all, &k_all, &v_all, workers,
                )?
            } else {
                // Inline path (single slot, or a single-core engine pool):
                // per-slot attention may fork head blocks onto the shared
                // kernel pool when the slot is large enough.
                metas
                    .iter()
                    .enumerate()
                    .map(|(si, meta)| {
                        let (start, len) = (offsets[si], meta.prompt_len - meta.prefix_len());
                        self.shared.prefill_slot_attention_dispatch(
                            layer_idx,
                            meta.prompt_len,
                            meta.prefix_ref(),
                            &q_all.slice_rows(start, start + len),
                            &k_all.slice_rows(start, start + len),
                            &v_all.slice_rows(start, start + len),
                        )
                    })
                    .collect::<Result<Vec<_>, ModelError>>()?
            };
            let mut attn_rows = Vec::with_capacity(slots.len());
            for (si, (attn, layer_kv)) in per_slot.into_iter().enumerate() {
                attn_rows.push(attn);
                kv_per_slot[si].push(layer_kv);
            }
            self.shared.finish_layer(layer, &mut x, attn_rows)?;
        }

        rms_norm_rows(
            &mut x,
            &self.shared.weights.final_norm,
            self.shared.config.rms_eps,
        );
        slots
            .iter()
            .enumerate()
            .zip(kv_per_slot)
            .map(|((si, slot), suffix_kv)| {
                let rows = offsets[si]..offsets[si] + slot.suffix_len();
                let hidden = x.slice_rows(rows.start, rows.end);
                let last_hidden = hidden.slice_rows(hidden.rows() - 1, hidden.rows());
                let logits = last_hidden.matmul(&self.shared.weights.lm_head)?;
                Ok(BatchPrefill {
                    prefix_len: slot.prefix_len,
                    suffix_kv,
                    last_logits: logits.row(0).to_vec(),
                    hidden,
                })
            })
            .collect()
    }

    /// Distributes one prefill layer's per-slot attention over the
    /// persistent pool: slots are split into contiguous chunks, worker `i`
    /// always computes chunk `i`, and results are stitched back in slot
    /// order — so the output is bit-identical to the inline loop.
    #[allow(clippy::too_many_arguments)]
    fn prefill_layer_pooled(
        &self,
        layer_idx: usize,
        metas: &[PrefillSlotMeta],
        offsets: &[usize],
        q_all: &Matrix,
        k_all: &Matrix,
        v_all: &Matrix,
        workers: usize,
    ) -> Result<Vec<(Matrix, Vec<RawKv>)>, ModelError> {
        let pool = self.pool();
        let workers = workers.min(pool.workers()).max(1);
        let n = metas.len();
        let chunk_len = n.div_ceil(workers);
        let mut receivers = Vec::new();
        for (ci, chunk) in metas.chunks(chunk_len).enumerate() {
            // Each job owns its slots' metadata and suffix Q/K/V rows.
            let jobs: Vec<(PrefillSlotMeta, Matrix, Matrix, Matrix)> = chunk
                .iter()
                .enumerate()
                .map(|(i, meta)| {
                    let si = ci * chunk_len + i;
                    let (start, len) = (offsets[si], meta.prompt_len - meta.prefix_len());
                    (
                        meta.clone(),
                        q_all.slice_rows(start, start + len),
                        k_all.slice_rows(start, start + len),
                        v_all.slice_rows(start, start + len),
                    )
                })
                .collect();
            let shared = Arc::clone(&self.shared);
            let (tx, rx) = mpsc::channel();
            receivers.push(rx);
            pool.run_on(
                ci,
                Box::new(move || {
                    let results: Vec<Result<(Matrix, Vec<RawKv>), ModelError>> = jobs
                        .into_iter()
                        .map(|(meta, q_s, k_s, v_s)| {
                            shared.prefill_slot_attention(
                                layer_idx,
                                meta.prompt_len,
                                meta.prefix_ref(),
                                &q_s,
                                &k_s,
                                &v_s,
                            )
                        })
                        .collect();
                    let _ = tx.send(results);
                }),
            );
        }
        let mut per_slot = Vec::with_capacity(n);
        for (ci, rx) in receivers.into_iter().enumerate() {
            let results = rx
                .recv()
                .map_err(|_| ModelError::Numeric(format!("prefill pool worker {ci} panicked")))?;
            for result in results {
                per_slot.push(result?);
            }
        }
        Ok(per_slot)
    }

    /// Segments the prefill KV tensors into a [`ChunkedKvCache`] with the
    /// given chunk size. All chunks start in FP16; a quantization policy is
    /// applied afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CacheMismatch`] if the chunk size is zero.
    pub fn build_cache(
        &self,
        prefill: &PrefillOutput,
        chunk_size: usize,
    ) -> Result<ChunkedKvCache, ModelError> {
        let context_len = prefill
            .kv
            .first()
            .and_then(|heads| heads.first())
            .map(|kv| kv.k.rows())
            .unwrap_or(0);
        let seg = ChunkSegmentation::new(context_len, chunk_size)?;
        let config = &self.shared.config;
        let mut cache = ChunkedKvCache::new(config.n_layers, config.n_kv_heads);
        for (layer, heads) in prefill.kv.iter().enumerate() {
            for (head, raw) in heads.iter().enumerate() {
                cache.set(
                    layer,
                    head,
                    ChunkedLayerCache::from_prefill(&raw.k, &raw.v, &seg)?,
                );
            }
        }
        Ok(cache)
    }

    /// Runs one decode step: processes `token` at absolute position `pos`,
    /// appends its KV to the cache tail and returns the next-token logits.
    ///
    /// Implemented as a batch of one, so a single-request decode is
    /// bit-identical to the same request's row of a
    /// [`InferenceEngine::decode_step_batch`] call.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CacheMismatch`] if the cache layout does not
    /// match the model, or [`ModelError::InvalidPrompt`] for an
    /// out-of-vocabulary token.
    pub fn decode_step(
        &self,
        token: u32,
        pos: usize,
        cache: &mut ChunkedKvCache,
    ) -> Result<DecodeStep, ModelError> {
        let mut slots = [DecodeSlot { token, pos, cache }];
        let mut steps = self.decode_step_batch(&mut slots)?;
        Ok(steps.pop().expect("batch of one yields one step"))
    }

    /// The multi-core decode round on the **persistent pool**: worker `i`
    /// owns the `i`-th contiguous chunk of the batch for the entire round.
    /// At the start of the round each chunk's caches are *taken* from the
    /// borrowed slots (an O(1) move per cache); per layer the main thread
    /// streams the QKV/MLP weights for the whole batch, ships each worker
    /// its chunk's Q/K/V rows together with the chunk's caches, and the
    /// worker sends back the attention rows plus the caches for the next
    /// layer. When the round ends (or fails) the caches move back into the
    /// slots. The arithmetic and its stitching order are exactly the
    /// single-threaded loop's, so outputs stay bit-identical — and no
    /// thread is ever spawned here: the pool outlives the round.
    fn decode_layers_pooled(
        &self,
        slots: &mut [DecodeSlot<'_>],
        x: &mut Matrix,
        workers: usize,
    ) -> Result<(), ModelError> {
        let pool = self.pool();
        let workers = workers.min(pool.workers()).max(1);
        let n = slots.len();
        let chunk_len = n.div_ceil(workers);
        let mut chunks: Vec<Option<DecodeChunk>> = slots
            .chunks_mut(chunk_len)
            .map(|chunk| {
                Some(DecodeChunk {
                    caches: chunk
                        .iter_mut()
                        .map(|slot| std::mem::replace(slot.cache, ChunkedKvCache::new(0, 0)))
                        .collect(),
                    positions: chunk.iter().map(|slot| slot.pos).collect(),
                })
            })
            .collect();

        let mut round = || -> Result<(), ModelError> {
            for (layer_idx, layer) in self.shared.weights.layers.iter().enumerate() {
                let (q_all, k_all, v_all) = self.shared.layer_qkv(layer, x)?;
                let mut receivers = Vec::with_capacity(chunks.len());
                for (ci, state) in chunks.iter_mut().enumerate() {
                    let mut chunk = state.take().expect("chunk caches are home between layers");
                    let start = ci * chunk_len;
                    let end = start + chunk.caches.len();
                    let q = q_all.slice_rows(start, end);
                    let k = k_all.slice_rows(start, end);
                    let v = v_all.slice_rows(start, end);
                    let shared = Arc::clone(&self.shared);
                    let (tx, rx) = mpsc::channel();
                    receivers.push(rx);
                    pool.run_on(
                        ci,
                        Box::new(move || {
                            let results: Vec<Result<Matrix, ModelError>> = (0..chunk.caches.len())
                                .map(|i| {
                                    shared.token_attention(
                                        layer_idx,
                                        &mut chunk.caches[i],
                                        chunk.positions[i],
                                        &q.slice_rows(i, i + 1),
                                        &k.slice_rows(i, i + 1),
                                        &v.slice_rows(i, i + 1),
                                    )
                                })
                                .collect();
                            let _ = tx.send((results, chunk));
                        }),
                    );
                }
                let mut attn_rows = Vec::with_capacity(n);
                let mut layer_err: Option<ModelError> = None;
                for (ci, rx) in receivers.into_iter().enumerate() {
                    // A worker only fails to reply if its job panicked.
                    // Surface that as an error (the panicked chunk's
                    // caches are lost with the thread, but every other
                    // chunk's caches are still collected and restored
                    // below) instead of panicking past the restore loop.
                    match rx.recv() {
                        Ok((results, chunk)) => {
                            chunks[ci] = Some(chunk);
                            for result in results {
                                match result {
                                    Ok(rows) => attn_rows.push(rows),
                                    Err(err) => {
                                        layer_err.get_or_insert(err);
                                    }
                                }
                            }
                        }
                        Err(_) => {
                            layer_err.get_or_insert(ModelError::Numeric(format!(
                                "decode pool worker {ci} panicked; its requests' caches are lost"
                            )));
                        }
                    }
                }
                if let Some(err) = layer_err {
                    return Err(err);
                }
                self.shared.finish_layer(layer, x, attn_rows)?;
            }
            Ok(())
        };
        let result = round();

        // Hand every cache back to its borrowed slot, error or not.
        for (chunk_slots, state) in slots.chunks_mut(chunk_len).zip(chunks) {
            if let Some(chunk) = state {
                for (slot, cache) in chunk_slots.iter_mut().zip(chunk.caches) {
                    *slot.cache = cache;
                }
            }
        }
        result
    }

    /// Runs one decode step for a whole batch of independent requests.
    ///
    /// Every slot's token is embedded into one hidden-state matrix (one row
    /// per request) so the weight-streaming work — the QKV projections, the
    /// MLP and the LM head, which dominate decode cost — is paid once per
    /// *batch* rather than once per request. Attention stays per-request,
    /// since each request owns its cache, and RoPE is applied per row at
    /// each request's own position; on multi-core hosts the per-request
    /// attention runs on the engine's persistent [`WorkerPool`], the
    /// request-level parallelism that continuous batching exposes. Row `i`
    /// of the batch goes through exactly the same row-wise arithmetic as a
    /// lone [`InferenceEngine::decode_step`] call — requests never share
    /// state — so batching (and pooling) never changes any request's
    /// logits: batched serving is bit-identical to sequential serving.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CacheMismatch`] if any cache layout does not
    /// match the model, or [`ModelError::InvalidPrompt`] for an
    /// out-of-vocabulary token.
    pub fn decode_step_batch(
        &self,
        slots: &mut [DecodeSlot<'_>],
    ) -> Result<Vec<DecodeStep>, ModelError> {
        if slots.is_empty() {
            return Ok(Vec::new());
        }
        let config = &self.shared.config;
        for slot in slots.iter() {
            if slot.cache.layers() != config.n_layers || slot.cache.kv_heads() != config.n_kv_heads
            {
                return Err(ModelError::CacheMismatch(format!(
                    "cache has {}x{} slots, model needs {}x{}",
                    slot.cache.layers(),
                    slot.cache.kv_heads(),
                    config.n_layers,
                    config.n_kv_heads
                )));
            }
        }
        let tokens: Vec<u32> = slots.iter().map(|s| s.token).collect();
        let mut x = self.embed(&tokens)?;
        // Worker count for the per-request attention: bounded by the cores
        // actually available, so a large batch never uses more threads than
        // the host can run.
        let workers = self.pool_workers().min(slots.len());

        if workers > 1 {
            self.decode_layers_pooled(slots, &mut x, workers)?;
        } else {
            for (layer_idx, layer) in self.shared.weights.layers.iter().enumerate() {
                let (q_all, k_all, v_all) = self.shared.layer_qkv(layer, &x)?;
                let attn_rows = slots
                    .iter_mut()
                    .enumerate()
                    .map(|(i, slot)| {
                        self.shared.token_attention(
                            layer_idx,
                            slot.cache,
                            slot.pos,
                            &q_all.slice_rows(i, i + 1),
                            &k_all.slice_rows(i, i + 1),
                            &v_all.slice_rows(i, i + 1),
                        )
                    })
                    .collect::<Result<Vec<Matrix>, ModelError>>()?;
                self.shared.finish_layer(layer, &mut x, attn_rows)?;
            }
        }

        rms_norm_rows(&mut x, &self.shared.weights.final_norm, config.rms_eps);
        let logits = x.matmul(&self.shared.weights.lm_head)?;
        Ok((0..slots.len())
            .map(|i| {
                let logits_vec = logits.row(i).to_vec();
                let next_token = argmax(&logits_vec);
                DecodeStep {
                    logits: logits_vec,
                    next_token,
                }
            })
            .collect())
    }

    /// Greedy generation of `max_new_tokens` tokens after the prompt, using
    /// the supplied cache (which has usually been rewritten by a
    /// quantization policy between [`InferenceEngine::build_cache`] and this
    /// call).
    ///
    /// # Errors
    ///
    /// Propagates any error from [`InferenceEngine::decode_step`].
    pub fn generate_with_cache(
        &self,
        prefill: &PrefillOutput,
        cache: &mut ChunkedKvCache,
        max_new_tokens: usize,
    ) -> Result<Vec<u32>, ModelError> {
        let mut generated = Vec::with_capacity(max_new_tokens);
        let prompt_len = prefill.hidden.rows();
        let mut token = prefill.next_token();
        for step in 0..max_new_tokens {
            generated.push(token);
            if step + 1 == max_new_tokens {
                break;
            }
            let out = self.decode_step(token, prompt_len + step, cache)?;
            token = out.next_token;
        }
        Ok(generated)
    }
}

fn argmax(values: &[f32]) -> u32 {
    let mut best = 0usize;
    let mut best_val = f32::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_quant::{Bitwidth, QuantAxis};

    fn tiny_engine() -> InferenceEngine {
        InferenceEngine::new(ModelProfile::tiny()).unwrap()
    }

    fn sample_prompt(engine: &InferenceEngine, words: usize) -> Vec<u32> {
        let text: Vec<String> = (0..words).map(|i| format!("word{i}")).collect();
        engine.tokenizer().encode(&text.join(" "))
    }

    #[test]
    fn head_parallel_prefill_is_bit_identical_to_scalar_prefill() {
        // A prompt large enough that the dispatch gate sends head blocks to
        // the kernel pool (96² tokens × hidden 32 ≫ the threshold), run
        // under kernel-thread overrides of 1 (scalar) and 4 (parallel).
        let engine = tiny_engine();
        let prompt = sample_prompt(&engine, 96);
        kernel_parallel::set_kernel_thread_override(Some(1));
        let scalar = engine.prefill(&prompt).unwrap();
        kernel_parallel::set_kernel_thread_override(Some(4));
        let parallel = engine.prefill(&prompt).unwrap();
        kernel_parallel::set_kernel_thread_override(None);
        assert_eq!(scalar, parallel);
    }

    #[test]
    fn prefill_produces_kv_of_expected_shapes() {
        let engine = tiny_engine();
        let prompt = sample_prompt(&engine, 12);
        let out = engine.prefill(&prompt).unwrap();
        assert_eq!(out.kv.len(), engine.config().n_layers);
        assert_eq!(out.kv[0].len(), engine.config().n_kv_heads);
        assert_eq!(out.kv[0][0].k.shape(), (12, engine.config().head_dim()));
        assert_eq!(out.hidden.shape(), (12, engine.config().hidden_dim));
        assert_eq!(out.last_logits.len(), engine.config().vocab_size);
        assert!(out.last_logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn prefill_rejects_empty_and_oversized_prompts() {
        let engine = tiny_engine();
        assert!(engine.prefill(&[]).is_err());
        let too_long = vec![2u32; engine.config().max_context + 1];
        assert!(engine.prefill(&too_long).is_err());
    }

    #[test]
    fn prefill_rejects_out_of_vocab_tokens() {
        let engine = tiny_engine();
        let bad = vec![engine.config().vocab_size as u32 + 5];
        assert!(engine.prefill(&bad).is_err());
    }

    #[test]
    fn prefill_is_deterministic() {
        let engine = tiny_engine();
        let prompt = sample_prompt(&engine, 8);
        let a = engine.prefill(&prompt).unwrap();
        let b = engine.prefill(&prompt).unwrap();
        assert_eq!(a.last_logits, b.last_logits);
        assert_eq!(a.kv[0][0].k, b.kv[0][0].k);
    }

    #[test]
    fn prefill_is_causal() {
        // Logits for the first tokens must not change when more tokens are
        // appended to the prompt.
        let engine = tiny_engine();
        let long = sample_prompt(&engine, 10);
        let short = long[..6].to_vec();
        let out_short = engine.prefill(&short).unwrap();
        let out_long = engine.prefill(&long).unwrap();
        // Hidden state of position 5 must be identical in both runs.
        let h_short = out_short.hidden.row(5);
        let h_long = out_long.hidden.row(5);
        for (a, b) in h_short.iter().zip(h_long.iter()) {
            assert!((a - b).abs() < 1e-4, "causality violated: {a} vs {b}");
        }
    }

    #[test]
    fn build_cache_has_one_slot_per_layer_and_head() {
        let engine = tiny_engine();
        let prompt = sample_prompt(&engine, 10);
        let prefill = engine.prefill(&prompt).unwrap();
        let cache = engine.build_cache(&prefill, 4).unwrap();
        assert_eq!(cache.layers(), engine.config().n_layers);
        assert_eq!(cache.kv_heads(), engine.config().n_kv_heads);
        let layer0 = cache.get(0, 0).unwrap();
        assert_eq!(layer0.chunk_count(), 2); // 10 tokens, chunk 4 -> 2 chunks + 2 remainder
        assert_eq!(layer0.remainder_len(), 2);
    }

    #[test]
    fn decode_step_appends_to_cache_and_returns_valid_token() {
        let engine = tiny_engine();
        let prompt = sample_prompt(&engine, 8);
        let prefill = engine.prefill(&prompt).unwrap();
        let mut cache = engine.build_cache(&prefill, 4).unwrap();
        let before = cache.get(0, 0).unwrap().total_tokens();
        let step = engine.decode_step(3, prompt.len(), &mut cache).unwrap();
        assert!((step.next_token as usize) < engine.config().vocab_size);
        assert_eq!(cache.get(0, 0).unwrap().total_tokens(), before + 1);
        assert_eq!(step.logits.len(), engine.config().vocab_size);
    }

    #[test]
    fn decode_with_quantized_cache_stays_close_to_fp16() {
        let engine = tiny_engine();
        let prompt = sample_prompt(&engine, 16);
        let prefill = engine.prefill(&prompt).unwrap();

        let mut fp16_cache = engine.build_cache(&prefill, 4).unwrap();
        let fp16_step = engine
            .decode_step(5, prompt.len(), &mut fp16_cache)
            .unwrap();

        let mut int8_cache = engine.build_cache(&prefill, 4).unwrap();
        int8_cache
            .try_for_each_mut(|_, _, layer| {
                layer.quantize_all(Bitwidth::Int8, QuantAxis::PerToken, QuantAxis::PerToken, 16)
            })
            .unwrap();
        let int8_step = engine
            .decode_step(5, prompt.len(), &mut int8_cache)
            .unwrap();

        let max_diff = fp16_step
            .logits
            .iter()
            .zip(int8_step.logits.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let scale = fp16_step
            .logits
            .iter()
            .map(|v| v.abs())
            .fold(0.0f32, f32::max)
            .max(1e-3);
        assert!(
            max_diff / scale < 0.1,
            "int8 cache changed logits too much: {max_diff} vs scale {scale}"
        );
    }

    #[test]
    fn decode_step_rejects_mismatched_cache() {
        let engine = tiny_engine();
        let mut wrong = ChunkedKvCache::new(1, 1);
        assert!(engine.decode_step(0, 0, &mut wrong).is_err());
    }

    #[test]
    fn generate_emits_requested_number_of_tokens() {
        let engine = tiny_engine();
        let prompt = sample_prompt(&engine, 8);
        let prefill = engine.prefill(&prompt).unwrap();
        let mut cache = engine.build_cache(&prefill, 4).unwrap();
        let out = engine.generate_with_cache(&prefill, &mut cache, 5).unwrap();
        assert_eq!(out.len(), 5);
        assert!(out
            .iter()
            .all(|&t| (t as usize) < engine.config().vocab_size));
    }

    #[test]
    fn batched_decode_is_bit_identical_to_sequential_decode() {
        let engine = tiny_engine();
        let prompts: Vec<Vec<u32>> = (0..3).map(|i| sample_prompt(&engine, 8 + 3 * i)).collect();
        let prefills: Vec<PrefillOutput> =
            prompts.iter().map(|p| engine.prefill(p).unwrap()).collect();

        // Sequential: each request decodes alone.
        let mut seq_steps = Vec::new();
        for (prompt, prefill) in prompts.iter().zip(&prefills) {
            let mut cache = engine.build_cache(prefill, 4).unwrap();
            let step = engine
                .decode_step(prefill.next_token(), prompt.len(), &mut cache)
                .unwrap();
            seq_steps.push((step, cache));
        }

        // Batched: all three decode in one call.
        let mut caches: Vec<ChunkedKvCache> = prefills
            .iter()
            .map(|p| engine.build_cache(p, 4).unwrap())
            .collect();
        let mut slots: Vec<DecodeSlot<'_>> = prefills
            .iter()
            .zip(prompts.iter())
            .zip(caches.iter_mut())
            .map(|((prefill, prompt), cache)| DecodeSlot {
                token: prefill.next_token(),
                pos: prompt.len(),
                cache,
            })
            .collect();
        let batch_steps = engine.decode_step_batch(&mut slots).unwrap();

        assert_eq!(batch_steps.len(), seq_steps.len());
        for (i, ((seq, seq_cache), batch)) in seq_steps.iter().zip(&batch_steps).enumerate() {
            assert_eq!(seq.logits, batch.logits, "request {i} logits diverged");
            assert_eq!(seq.next_token, batch.next_token);
            assert_eq!(seq_cache, &caches[i], "request {i} cache diverged");
        }
    }

    #[test]
    fn worker_pool_spawns_once_per_engine_lifetime() {
        let engine = tiny_engine();
        assert_eq!(
            engine.pool_spawn_count(),
            0,
            "no pool before the first batched call"
        );
        let prompts: Vec<Vec<u32>> = (0..4).map(|i| sample_prompt(&engine, 6 + 2 * i)).collect();
        let slots: Vec<PrefillSlot<'_>> = prompts.iter().map(|p| PrefillSlot::cold(p)).collect();
        let prefills = engine.prefill_batch(&slots).unwrap();
        let after_prefill = engine.pool_spawn_count();

        // Many decode rounds over the same engine: the pool must not grow.
        let mut caches: Vec<ChunkedKvCache> = prompts
            .iter()
            .zip(&prefills)
            .map(|(p, b)| {
                let out = PrefillOutput {
                    kv: b.suffix_kv.clone(),
                    hidden: b.hidden.clone(),
                    last_logits: b.last_logits.clone(),
                };
                let _ = p;
                engine.build_cache(&out, 4).unwrap()
            })
            .collect();
        let mut tokens: Vec<u32> = prefills.iter().map(BatchPrefill::next_token).collect();
        for round in 0..5 {
            let mut decode_slots: Vec<DecodeSlot<'_>> = caches
                .iter_mut()
                .zip(prompts.iter())
                .zip(tokens.iter())
                .map(|((cache, prompt), &token)| DecodeSlot {
                    token,
                    pos: prompt.len() + round,
                    cache,
                })
                .collect();
            let steps = engine.decode_step_batch(&mut decode_slots).unwrap();
            for (token, step) in tokens.iter_mut().zip(steps) {
                *token = step.next_token;
            }
        }

        let after_rounds = engine.pool_spawn_count();
        if engine.pool_workers() > 1 {
            assert!(after_prefill > 0, "multi-core host must engage the pool");
            assert_eq!(
                after_prefill, after_rounds,
                "the pool re-spawned workers between rounds"
            );
            assert_eq!(after_rounds, engine.pool_workers());
        } else {
            assert_eq!(after_rounds, 0, "single-core host never spawns a pool");
        }
    }

    fn prefix_blocks_from_prefill(
        engine: &InferenceEngine,
        prefill: &PrefillOutput,
        prefix_len: usize,
    ) -> SharedPrefixKv {
        let mut blocks = Vec::new();
        for heads in &prefill.kv {
            for raw in heads {
                blocks.push(
                    cocktail_kvcache::PrefixKvBlock::new(
                        raw.k.slice_rows(0, prefix_len),
                        raw.v.slice_rows(0, prefix_len),
                    )
                    .unwrap(),
                );
            }
        }
        SharedPrefixKv::from_blocks(engine.config().n_layers, engine.config().n_kv_heads, blocks)
            .unwrap()
    }

    #[test]
    fn batched_prefill_is_bit_identical_to_sequential_prefill() {
        let engine = tiny_engine();
        let prompts: Vec<Vec<u32>> = (0..3).map(|i| sample_prompt(&engine, 7 + 4 * i)).collect();
        let sequential: Vec<PrefillOutput> =
            prompts.iter().map(|p| engine.prefill(p).unwrap()).collect();
        let slots: Vec<PrefillSlot<'_>> = prompts.iter().map(|p| PrefillSlot::cold(p)).collect();
        let batched = engine.prefill_batch(&slots).unwrap();
        for ((seq, batch), prompt) in sequential.iter().zip(&batched).zip(&prompts) {
            assert_eq!(batch.prefix_len, 0);
            assert_eq!(batch.suffix_len(), prompt.len());
            assert_eq!(seq.last_logits, batch.last_logits);
            assert_eq!(seq.hidden, batch.hidden);
            assert_eq!(seq.kv, batch.suffix_kv);
        }
    }

    #[test]
    fn prefix_reusing_prefill_is_bit_identical_to_cold_prefill() {
        let engine = tiny_engine();
        let full = sample_prompt(&engine, 14);
        let cold = engine.prefill(&full).unwrap();
        for prefix_len in [1usize, 5, 8, 13] {
            let shared = prefix_blocks_from_prefill(&engine, &cold, prefix_len);
            let warm = engine
                .prefill_batch(&[PrefillSlot::with_prefix(&full, &shared, prefix_len)])
                .unwrap()
                .pop()
                .unwrap();
            assert_eq!(warm.prefix_len, prefix_len);
            assert_eq!(warm.suffix_len(), full.len() - prefix_len);
            assert_eq!(
                cold.last_logits, warm.last_logits,
                "prefix {prefix_len}: logits diverged"
            );
            for (layer, heads) in cold.kv.iter().enumerate() {
                for (head, raw) in heads.iter().enumerate() {
                    let warm_raw = &warm.suffix_kv[layer][head];
                    assert_eq!(
                        raw.k.slice_rows(prefix_len, full.len()),
                        warm_raw.k,
                        "layer {layer} head {head} suffix keys diverged"
                    );
                    assert_eq!(raw.v.slice_rows(prefix_len, full.len()), warm_raw.v);
                }
            }
            assert_eq!(cold.hidden.slice_rows(prefix_len, full.len()), warm.hidden);
        }
    }

    #[test]
    fn mixed_cold_and_warm_prefill_batch_matches_singles() {
        let engine = tiny_engine();
        let shared_full = sample_prompt(&engine, 12);
        let cold_prefill = engine.prefill(&shared_full).unwrap();
        let shared = prefix_blocks_from_prefill(&engine, &cold_prefill, 9);
        let other = sample_prompt(&engine, 10);

        let singles = [
            engine
                .prefill_batch(&[PrefillSlot::with_prefix(&shared_full, &shared, 9)])
                .unwrap()
                .pop()
                .unwrap(),
            engine
                .prefill_batch(&[PrefillSlot::cold(&other)])
                .unwrap()
                .pop()
                .unwrap(),
        ];
        let batched = engine
            .prefill_batch(&[
                PrefillSlot::with_prefix(&shared_full, &shared, 9),
                PrefillSlot::cold(&other),
            ])
            .unwrap();
        for (single, batch) in singles.iter().zip(&batched) {
            assert_eq!(single, batch, "batch composition changed a prefill");
        }
    }

    #[test]
    fn prefill_batch_rejects_invalid_slots() {
        let engine = tiny_engine();
        let prompt = sample_prompt(&engine, 10);
        let prefill = engine.prefill(&prompt).unwrap();
        let shared = prefix_blocks_from_prefill(&engine, &prefill, 10);
        // Empty prompt.
        assert!(engine.prefill_batch(&[PrefillSlot::cold(&[])]).is_err());
        // prefix_len without blocks.
        let bad = PrefillSlot {
            tokens: &prompt,
            prefix: None,
            prefix_len: 3,
        };
        assert!(engine.prefill_batch(&[bad]).is_err());
        // prefix_len covering the whole prompt leaves nothing to compute.
        assert!(engine
            .prefill_batch(&[PrefillSlot::with_prefix(&prompt, &shared, prompt.len())])
            .is_err());
        // Mismatched block layout.
        let wrong = SharedPrefixKv::from_blocks(
            1,
            1,
            vec![cocktail_kvcache::PrefixKvBlock::new(
                Matrix::zeros(4, engine.config().head_dim()),
                Matrix::zeros(4, engine.config().head_dim()),
            )
            .unwrap()],
        )
        .unwrap();
        assert!(engine
            .prefill_batch(&[PrefillSlot::with_prefix(&prompt, &wrong, 2)])
            .is_err());
    }

    #[test]
    fn empty_decode_batch_is_a_no_op() {
        let engine = tiny_engine();
        assert!(engine.decode_step_batch(&mut []).unwrap().is_empty());
    }

    #[test]
    fn gqa_engine_runs_end_to_end() {
        let profile = ModelProfile::mistral_7b_sim();
        let engine = InferenceEngine::new(profile).unwrap();
        assert!(engine.config().gqa_group_size() > 1);
        let prompt = sample_prompt(&engine, 12);
        let prefill = engine.prefill(&prompt).unwrap();
        let mut cache = engine.build_cache(&prefill, 4).unwrap();
        let out = engine.generate_with_cache(&prefill, &mut cache, 3).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 3.0, -2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }
}
