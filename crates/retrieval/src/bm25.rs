//! Classical BM25 lexical chunk scoring.

use crate::chunking::split_words;
use crate::scorer::ChunkScorer;
use std::collections::HashMap;

/// The Okapi BM25 ranking function over the chunk set being scored.
///
/// Each chunk is treated as a document; document frequencies and average
/// document length are computed over the supplied chunk list, so the scorer
/// is self-contained (no external corpus statistics).
///
/// # Example
///
/// ```
/// use cocktail_retrieval::{Bm25, ChunkScorer};
///
/// let chunks = vec![
///     "rust is a systems programming language".to_string(),
///     "bananas are yellow fruit".to_string(),
/// ];
/// let scores = Bm25::new().score("systems programming", &chunks);
/// assert!(scores[0] > scores[1]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Bm25 {
    k1: f32,
    b: f32,
}

impl Bm25 {
    /// Creates a scorer with the standard parameters `k1 = 1.2`, `b = 0.75`.
    pub fn new() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }

    /// Creates a scorer with custom parameters.
    ///
    /// # Panics
    ///
    /// Panics if `k1 < 0` or `b` is outside `[0, 1]`.
    pub fn with_params(k1: f32, b: f32) -> Self {
        assert!(k1 >= 0.0, "k1 must be non-negative");
        assert!((0.0..=1.0).contains(&b), "b must be in [0, 1]");
        Self { k1, b }
    }

    /// The `k1` term-frequency saturation parameter.
    pub fn k1(&self) -> f32 {
        self.k1
    }

    /// The `b` length-normalisation parameter.
    pub fn b(&self) -> f32 {
        self.b
    }
}

impl Default for Bm25 {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkScorer for Bm25 {
    fn name(&self) -> &'static str {
        "BM25"
    }

    fn score(&self, query: &str, chunks: &[String]) -> Vec<f32> {
        if chunks.is_empty() {
            return Vec::new();
        }
        let docs: Vec<Vec<String>> = chunks.iter().map(|c| split_words(c)).collect();
        let n = docs.len() as f32;
        let avg_len = docs.iter().map(|d| d.len() as f32).sum::<f32>() / n;

        // Document frequency per term.
        let mut df: HashMap<&str, usize> = HashMap::new();
        for doc in &docs {
            let mut seen: Vec<&str> = doc.iter().map(String::as_str).collect();
            seen.sort_unstable();
            seen.dedup();
            for term in seen {
                *df.entry(term).or_insert(0) += 1;
            }
        }

        let query_terms = split_words(query);
        docs.iter()
            .map(|doc| {
                let len = doc.len() as f32;
                let mut tf: HashMap<&str, f32> = HashMap::new();
                for term in doc {
                    *tf.entry(term.as_str()).or_insert(0.0) += 1.0;
                }
                query_terms
                    .iter()
                    .map(|q| {
                        let f = *tf.get(q.as_str()).unwrap_or(&0.0);
                        if f == 0.0 {
                            return 0.0;
                        }
                        let n_q = *df.get(q.as_str()).unwrap_or(&0) as f32;
                        let idf = ((n - n_q + 0.5) / (n_q + 0.5) + 1.0).ln();
                        let denom_len = if avg_len > 0.0 { len / avg_len } else { 1.0 };
                        idf * f * (self.k1 + 1.0)
                            / (f + self.k1 * (1.0 - self.b + self.b * denom_len))
                    })
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chunks() -> Vec<String> {
        vec![
            "alpha beta gamma delta".to_string(),
            "alpha alpha alpha alpha".to_string(),
            "omega psi chi phi".to_string(),
            "beta beta alpha gamma epsilon zeta eta theta".to_string(),
        ]
    }

    #[test]
    fn exact_match_beats_no_match() {
        let scores = Bm25::new().score("omega", &chunks());
        assert!(scores[2] > scores[0]);
        assert_eq!(scores[0], 0.0);
    }

    #[test]
    fn term_frequency_saturates() {
        // Four copies of "alpha" should score higher than one, but not 4x.
        let scores = Bm25::new().score("alpha", &chunks());
        assert!(scores[1] > scores[0]);
        assert!(scores[1] < scores[0] * 4.0);
    }

    #[test]
    fn rare_terms_get_higher_idf() {
        let scores = Bm25::new().score("omega alpha", &chunks());
        // Chunk 2 has the rare term omega; chunk 1 has the common alpha.
        assert!(scores[2] > 0.0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(Bm25::new().score("anything", &[]).is_empty());
        let scores = Bm25::new().score("", &chunks());
        assert!(scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn scores_are_non_negative() {
        let scores = Bm25::new().score("alpha beta omega", &chunks());
        assert!(scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn custom_params_validate() {
        let bm = Bm25::with_params(2.0, 0.5);
        assert_eq!(bm.k1(), 2.0);
        assert_eq!(bm.b(), 0.5);
    }

    #[test]
    #[should_panic(expected = "b must be in")]
    fn invalid_b_panics() {
        Bm25::with_params(1.2, 1.5);
    }

    proptest! {
        #[test]
        fn bm25_never_produces_nan(
            query in "[a-c ]{0,20}",
            docs in proptest::collection::vec("[a-d ]{0,30}", 0..6)
        ) {
            let docs: Vec<String> = docs;
            let scores = Bm25::new().score(&query, &docs);
            prop_assert_eq!(scores.len(), docs.len());
            prop_assert!(scores.iter().all(|s| s.is_finite()));
        }
    }
}
