//! Retrieval substrate for chunk-level quantization search.
//!
//! Module I of the Cocktail paper scores every context chunk against the
//! query with a retrieval encoder (Facebook-Contriever in the paper, with
//! ADA-002, BM25 and LLM-Embedder as ablation alternatives in Table IV).
//! Pretrained encoders are not available in this reproduction, so this
//! crate provides deterministic stand-ins that preserve what matters for
//! the method: a [`ChunkScorer`] ranks answer-bearing chunks above
//! irrelevant ones, with encoder-dependent quality.
//!
//! * [`ContrieverSim`], [`LlmEmbedderSim`], [`AdaSim`] — hashed
//!   bag-of-words dense encoders with IDF weighting and random projection,
//!   at decreasing embedding width / increasing noise so their retrieval
//!   quality is ordered the same way as in the paper's Table IV.
//! * [`Bm25`] — a faithful classical BM25 implementation.
//! * [`chunking`] — splitting a long context into fixed-size word chunks
//!   aligned with the KV-cache chunk segmentation.
//! * [`similarity_matrix`] — the query × chunk score matrix behind the
//!   paper's Figure 1 heatmap.
//!
//! # Example
//!
//! ```
//! use cocktail_retrieval::{chunking, ChunkScorer, ContrieverSim};
//!
//! let context = "the sky is blue today. \
//!                the treasury code is zebra-nine-one. \
//!                bananas are rich in potassium.";
//! let chunks = chunking::chunk_words(context, 6);
//! let scorer = ContrieverSim::new();
//! let scores = scorer.score("what is the treasury code?", &chunks);
//! let best = scores
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.total_cmp(b.1))
//!     .map(|(i, _)| i)
//!     .unwrap();
//! assert!(chunks[best].contains("treasury"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bm25;
pub mod chunking;
mod dense;
mod scorer;
mod similarity;

pub use bm25::Bm25;
pub use dense::{AdaSim, ContrieverSim, DenseEncoder, LlmEmbedderSim};
pub use scorer::{ChunkScorer, EncoderKind};
pub use similarity::similarity_matrix;
