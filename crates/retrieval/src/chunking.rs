//! Splitting a long context into fixed-size word chunks.
//!
//! The chunk boundaries used for retrieval scoring must coincide with the
//! KV-cache chunk boundaries, so the same word-level splitting rules as the
//! model tokenizer are used: whitespace splitting, punctuation detachment,
//! lower-casing. A chunk of `chunk_size` words therefore corresponds to a
//! KV-cache chunk of `chunk_size` tokens.

/// Splits text into normalised word/punctuation pieces (the same rules as
/// the model tokenizer, duplicated here so the retrieval crate stays
/// independent of the model crate).
pub fn split_words(text: &str) -> Vec<String> {
    let mut words = Vec::new();
    for raw in text.split_whitespace() {
        let mut current = String::new();
        for ch in raw.chars() {
            if ch.is_alphanumeric() || ch == '_' || ch == '-' {
                current.extend(ch.to_lowercase());
            } else {
                if !current.is_empty() {
                    words.push(std::mem::take(&mut current));
                }
                words.push(ch.to_string());
            }
        }
        if !current.is_empty() {
            words.push(current);
        }
    }
    words
}

/// Splits a context into chunks of exactly `chunk_size` words each,
/// discarding the trailing words that do not fill a whole chunk (they stay
/// in FP16 in the KV cache and are never scored).
///
/// # Panics
///
/// Panics if `chunk_size` is zero.
///
/// # Example
///
/// ```
/// let chunks = cocktail_retrieval::chunking::chunk_words("a b c d e", 2);
/// assert_eq!(chunks, vec!["a b", "c d"]);
/// ```
pub fn chunk_words(text: &str, chunk_size: usize) -> Vec<String> {
    assert!(chunk_size > 0, "chunk size must be nonzero");
    let words = split_words(text);
    words
        .chunks_exact(chunk_size)
        .map(|chunk| chunk.join(" "))
        .collect()
}

/// Like [`chunk_words`] but also returns the trailing remainder words (the
/// part of the context the paper keeps in FP16).
pub fn chunk_words_with_remainder(text: &str, chunk_size: usize) -> (Vec<String>, String) {
    assert!(chunk_size > 0, "chunk size must be nonzero");
    let words = split_words(text);
    let full = words.len() / chunk_size * chunk_size;
    let chunks = words[..full]
        .chunks_exact(chunk_size)
        .map(|chunk| chunk.join(" "))
        .collect();
    (chunks, words[full..].join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_discards_partial_tail() {
        let chunks = chunk_words("one two three four five", 2);
        assert_eq!(chunks, vec!["one two", "three four"]);
    }

    #[test]
    fn chunking_with_remainder_keeps_tail() {
        let (chunks, rem) = chunk_words_with_remainder("one two three four five", 2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(rem, "five");
    }

    #[test]
    fn exact_multiple_has_empty_remainder() {
        let (chunks, rem) = chunk_words_with_remainder("a b c d", 2);
        assert_eq!(chunks.len(), 2);
        assert!(rem.is_empty());
    }

    #[test]
    fn empty_text_yields_no_chunks() {
        assert!(chunk_words("", 8).is_empty());
        let (chunks, rem) = chunk_words_with_remainder("", 8);
        assert!(chunks.is_empty());
        assert!(rem.is_empty());
    }

    #[test]
    fn splitting_matches_model_tokenizer_rules() {
        assert_eq!(
            split_words("Hello, World! ALPHA-42"),
            vec!["hello", ",", "world", "!", "alpha-42"]
        );
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_chunk_size_panics() {
        chunk_words("a b", 0);
    }

    #[test]
    fn chunk_count_matches_word_count() {
        let text = (0..100)
            .map(|i| format!("w{i}"))
            .collect::<Vec<_>>()
            .join(" ");
        assert_eq!(chunk_words(&text, 32).len(), 3);
        assert_eq!(chunk_words(&text, 10).len(), 10);
    }
}
