//! Query × chunk similarity matrices (the paper's Figure 1).

use crate::scorer::ChunkScorer;
use cocktail_tensor::Matrix;

/// Computes the full similarity matrix between a list of queries and a list
/// of context chunks: entry `(i, j)` is the score of chunk `j` for query
/// `i`.
///
/// This is the object plotted as a heatmap in Figure 1 of the paper, which
/// motivates the whole method: for any single query only a few chunks score
/// highly.
///
/// # Example
///
/// ```
/// use cocktail_retrieval::{similarity_matrix, ContrieverSim};
///
/// let chunks = vec![
///     "the eiffel tower is in paris".to_string(),
///     "whales are marine mammals".to_string(),
/// ];
/// let queries = vec!["where is the eiffel tower?".to_string()];
/// let m = similarity_matrix(&queries, &chunks, &ContrieverSim::new());
/// assert_eq!(m.shape(), (1, 2));
/// assert!(m.get(0, 0) > m.get(0, 1));
/// ```
pub fn similarity_matrix<S: ChunkScorer + ?Sized>(
    queries: &[String],
    chunks: &[String],
    scorer: &S,
) -> Matrix {
    let mut m = Matrix::zeros(queries.len(), chunks.len());
    for (i, q) in queries.iter().enumerate() {
        let scores = scorer.score(q, chunks);
        for (j, s) in scores.into_iter().enumerate() {
            m.set(i, j, s);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::ContrieverSim;

    fn passage_chunks(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "paragraph {i} discusses the history of settlement {i} including trade \
                     routes agriculture and seasonal festivals unique to settlement {i}"
                )
            })
            .collect()
    }

    #[test]
    fn matrix_shape_matches_inputs() {
        let chunks = passage_chunks(8);
        let queries: Vec<String> = (0..3)
            .map(|q| format!("tell me about the festivals of settlement {q}"))
            .collect();
        let m = similarity_matrix(&queries, &chunks, &ContrieverSim::new());
        assert_eq!(m.shape(), (3, 8));
    }

    #[test]
    fn each_query_peaks_on_its_own_chunk() {
        let chunks = passage_chunks(10);
        let queries: Vec<String> = (0..10)
            .map(|q| format!("what trade routes did settlement {q} use?"))
            .collect();
        let m = similarity_matrix(&queries, &chunks, &ContrieverSim::new());
        for q in 0..10 {
            let row = m.row(q);
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(best, q, "query {q} should peak on chunk {q}");
        }
    }

    #[test]
    fn most_chunks_are_irrelevant_for_each_query() {
        // The motivating observation of Figure 1: for each query only a small
        // fraction of chunks score near the per-query maximum.
        let chunks = passage_chunks(40);
        let queries: Vec<String> = (0..5)
            .map(|q| format!("describe the agriculture of settlement {q}"))
            .collect();
        let m = similarity_matrix(&queries, &chunks, &ContrieverSim::new());
        for q in 0..5 {
            let row = m.row(q);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let min = row.iter().cloned().fold(f32::INFINITY, f32::min);
            let threshold = min + 0.8 * (max - min);
            let highly_relevant = row.iter().filter(|&&s| s >= threshold).count();
            assert!(
                highly_relevant <= chunks.len() / 4,
                "query {q}: {highly_relevant} of {} chunks are near-max",
                chunks.len()
            );
        }
    }

    #[test]
    fn empty_inputs_give_empty_matrix() {
        let m = similarity_matrix(&[], &[], &ContrieverSim::new());
        assert_eq!(m.shape(), (0, 0));
    }
}
