//! Deterministic dense chunk encoders.
//!
//! The encoders hash word unigrams and bigrams into a fixed-width feature
//! space, weight them by an inverse-document-frequency estimate computed
//! over the chunk set being scored, and L2-normalise — a classical hashed
//! TF-IDF embedding. Query/chunk relevance is the cosine similarity of
//! those embeddings.
//!
//! Three presets model the encoder-quality ordering of the paper's
//! Table IV: [`ContrieverSim`] (wide feature space, IDF-weighted),
//! [`LlmEmbedderSim`] (narrower space, mild seeded noise) and [`AdaSim`]
//! (narrow space, no IDF, stronger noise). The widths and noise levels are
//! chosen only to order the retrieval quality, not to mimic any particular
//! proprietary model.

use crate::chunking::split_words;
use crate::scorer::ChunkScorer;
use cocktail_tensor::cosine_similarity;
use std::collections::HashMap;

/// A configurable hashed TF-IDF dense encoder.
///
/// # Example
///
/// ```
/// use cocktail_retrieval::{ChunkScorer, DenseEncoder};
///
/// let encoder = DenseEncoder::new("demo", 256, true, true, 0.0, 7);
/// let chunks = vec![
///     "apollo landed on the moon".to_string(),
///     "recipes for sourdough bread".to_string(),
/// ];
/// let scores = encoder.score("moon landing", &chunks);
/// assert!(scores[0] > scores[1]);
/// ```
#[derive(Debug, Clone)]
pub struct DenseEncoder {
    name: &'static str,
    dim: usize,
    use_idf: bool,
    use_bigrams: bool,
    noise: f32,
    seed: u64,
}

impl DenseEncoder {
    /// Creates an encoder.
    ///
    /// * `dim` — width of the hashed feature space (larger = fewer
    ///   collisions = better retrieval).
    /// * `use_idf` — weight features by inverse document frequency over the
    ///   chunk set.
    /// * `use_bigrams` — include word-bigram features.
    /// * `noise` — standard deviation of deterministic pseudo-noise added to
    ///   each embedding dimension (degrades quality).
    /// * `seed` — seed for the hashing and the pseudo-noise.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(
        name: &'static str,
        dim: usize,
        use_idf: bool,
        use_bigrams: bool,
        noise: f32,
        seed: u64,
    ) -> Self {
        assert!(dim > 0, "embedding dimension must be nonzero");
        Self {
            name,
            dim,
            use_idf,
            use_bigrams,
            noise,
            seed,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of independent hash rows per feature (count-sketch style).
    /// With a single row, one unlucky bucket collision between a rare
    /// query-defining term and an opposite-signed rare term can cancel the
    /// whole retrieval signal for a chunk; spreading each feature over four
    /// independently hashed buckets bounds the damage of any single
    /// collision to a quarter of the feature's energy.
    const HASH_ROWS: u64 = 4;

    /// One FNV-1a pass over the feature bytes; the per-row buckets are
    /// derived from this digest so the string is hashed only once.
    fn feature_digest(&self, feature: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in feature.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Bucket and sign for one count-sketch row: a SplitMix64 finalizer over
    /// the row-salted digest gives independently mixed bits per row; low
    /// bits pick the bucket, one higher bit picks the sign (signed hashing
    /// reduces collision bias).
    fn row_bucket(&self, digest: u64, row: u64) -> (usize, f32) {
        let mut z = digest ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let bucket = (z % self.dim as u64) as usize;
        let sign = if (z >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        (bucket, sign)
    }

    fn features(&self, text: &str) -> Vec<String> {
        let words = split_words(text);
        // Keep multi-character words and numeric tokens; single punctuation
        // characters carry no retrieval signal.
        let mut feats: Vec<String> = words
            .iter()
            .filter(|w| w.len() > 1 || w.chars().all(|c| c.is_ascii_digit()))
            .cloned()
            .collect();
        if self.use_bigrams {
            for pair in words.windows(2) {
                feats.push(format!("{}_{}", pair[0], pair[1]));
            }
        }
        feats
    }

    /// Embeds a single text given externally computed IDF weights (pass an
    /// empty map to fall back to uniform weights).
    pub fn embed_with_idf(&self, text: &str, idf: &HashMap<String, f32>) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        // Aggregate term frequencies first (in first-occurrence order, so
        // accumulation order stays deterministic) so each unique feature is
        // hashed and scattered once, however often it repeats.
        let mut counts: Vec<(String, f32)> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for feat in self.features(text) {
            match index.entry(feat) {
                std::collections::hash_map::Entry::Occupied(e) => counts[*e.get()].1 += 1.0,
                std::collections::hash_map::Entry::Vacant(e) => {
                    counts.push((e.key().clone(), 1.0));
                    e.insert(counts.len() - 1);
                }
            }
        }
        for (feat, count) in counts {
            let weight = if self.use_idf {
                *idf.get(&feat).unwrap_or(&1.0)
            } else {
                1.0
            };
            // Normalising by sqrt(rows) keeps a feature's total energy (and
            // therefore matched-feature dot products) identical to the
            // single-row scheme.
            let row_weight = count * weight / (Self::HASH_ROWS as f32).sqrt();
            let digest = self.feature_digest(&feat);
            for row in 0..Self::HASH_ROWS {
                let (bucket, sign) = self.row_bucket(digest, row);
                v[bucket] += sign * row_weight;
            }
        }
        if self.noise > 0.0 {
            // Deterministic pseudo-noise derived from the text so repeated
            // calls stay reproducible.
            let mut h: u64 = self.seed;
            for b in text.as_bytes() {
                h = h
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(u64::from(*b));
            }
            for (i, slot) in v.iter_mut().enumerate() {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                let r = ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
                *slot += r * self.noise;
            }
        }
        let norm = cocktail_tensor::l2_norm(&v);
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }

    /// Embeds a single text with uniform feature weights (no corpus IDF).
    pub fn embed(&self, text: &str) -> Vec<f32> {
        self.embed_with_idf(text, &HashMap::new())
    }

    fn idf_over(&self, chunks: &[String]) -> HashMap<String, f32> {
        let mut df: HashMap<String, usize> = HashMap::new();
        for chunk in chunks {
            let mut feats = self.features(chunk);
            feats.sort();
            feats.dedup();
            for f in feats {
                *df.entry(f).or_insert(0) += 1;
            }
        }
        let n = chunks.len().max(1) as f32;
        // Squared IDF sharpens the contrast between rare, query-defining
        // terms and ubiquitous filler vocabulary. This mimics the large
        // relevant/irrelevant similarity margin a contrastively trained
        // dense encoder (such as Contriever) produces — the margin visible
        // in Figure 1 of the paper — which plain TF-IDF underestimates.
        df.into_iter()
            .map(|(f, count)| {
                let idf = (1.0 + n / (1.0 + count as f32)).ln();
                (f, idf * idf)
            })
            .collect()
    }
}

impl ChunkScorer for DenseEncoder {
    fn name(&self) -> &'static str {
        self.name
    }

    fn score(&self, query: &str, chunks: &[String]) -> Vec<f32> {
        let idf = if self.use_idf {
            self.idf_over(chunks)
        } else {
            HashMap::new()
        };
        let q = self.embed_with_idf(query, &idf);
        chunks
            .iter()
            .map(|c| cosine_similarity(&q, &self.embed_with_idf(c, &idf)))
            .collect()
    }
}

/// Stand-in for the Facebook-Contriever encoder — the paper's choice and
/// the highest-quality scorer in this reproduction.
#[derive(Debug, Clone)]
pub struct ContrieverSim(DenseEncoder);

impl ContrieverSim {
    /// Creates the encoder with its standard parameters.
    pub fn new() -> Self {
        Self(DenseEncoder::new(
            "contriever-sim",
            1024,
            true,
            false,
            0.0,
            0xC04,
        ))
    }

    /// Access to the underlying dense encoder (for embedding inspection).
    pub fn encoder(&self) -> &DenseEncoder {
        &self.0
    }
}

impl Default for ContrieverSim {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkScorer for ContrieverSim {
    fn name(&self) -> &'static str {
        "Facebook-Contriever"
    }
    fn score(&self, query: &str, chunks: &[String]) -> Vec<f32> {
        self.0.score(query, chunks)
    }
}

/// Stand-in for the LLM-Embedder model: slightly narrower feature space and
/// mild noise, so its retrieval quality sits just below Contriever.
#[derive(Debug, Clone)]
pub struct LlmEmbedderSim(DenseEncoder);

impl LlmEmbedderSim {
    /// Creates the encoder with its standard parameters.
    pub fn new() -> Self {
        Self(DenseEncoder::new(
            "llm-embedder-sim",
            256,
            true,
            false,
            0.02,
            0x11E,
        ))
    }
}

impl Default for LlmEmbedderSim {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkScorer for LlmEmbedderSim {
    fn name(&self) -> &'static str {
        "LLM Embedder"
    }
    fn score(&self, query: &str, chunks: &[String]) -> Vec<f32> {
        self.0.score(query, chunks)
    }
}

/// Stand-in for ADA-002 embeddings: narrow feature space, no IDF weighting
/// and stronger noise, so it ranks below the other dense encoders on the
/// synthetic tasks (matching its position in the paper's Table IV).
#[derive(Debug, Clone)]
pub struct AdaSim(DenseEncoder);

impl AdaSim {
    /// Creates the encoder with its standard parameters.
    pub fn new() -> Self {
        Self(DenseEncoder::new(
            "ada-002-sim",
            96,
            false,
            false,
            0.05,
            0xADA,
        ))
    }
}

impl Default for AdaSim {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkScorer for AdaSim {
    fn name(&self) -> &'static str {
        "ADA-002"
    }
    fn score(&self, query: &str, chunks: &[String]) -> Vec<f32> {
        self.0.score(query, chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chunks() -> Vec<String> {
        vec![
            "the weather in the mountains was cold and windy all week".to_string(),
            "the launch access code is delta-seven-three stored in the vault".to_string(),
            "our quarterly revenue grew by twelve percent over last year".to_string(),
            "a recipe for lentil soup with cumin garlic and fresh coriander".to_string(),
        ]
    }

    #[test]
    fn relevant_chunk_scores_highest() {
        let scorer = ContrieverSim::new();
        let scores = scorer.score("what is the launch access code?", &sample_chunks());
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 1);
    }

    #[test]
    fn scores_are_deterministic() {
        let scorer = ContrieverSim::new();
        let a = scorer.score("revenue growth", &sample_chunks());
        let b = scorer.score("revenue growth", &sample_chunks());
        assert_eq!(a, b);
    }

    #[test]
    fn scores_are_cosine_bounded() {
        for scorer in [
            Box::new(ContrieverSim::new()) as Box<dyn ChunkScorer>,
            Box::new(LlmEmbedderSim::new()),
            Box::new(AdaSim::new()),
        ] {
            let scores = scorer.score("lentil soup recipe", &sample_chunks());
            assert!(scores.iter().all(|s| (-1.01..=1.01).contains(s)));
        }
    }

    #[test]
    fn empty_chunk_list_gives_empty_scores() {
        let scorer = ContrieverSim::new();
        assert!(scorer.score("anything", &[]).is_empty());
    }

    #[test]
    fn empty_text_embeds_to_zero_vector() {
        let enc = DenseEncoder::new("t", 64, true, true, 0.0, 1);
        let v = enc.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let enc = ContrieverSim::new();
        let v = enc.encoder().embed("the moon is made of rock");
        let norm = cocktail_tensor::l2_norm(&v);
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn idf_downweights_common_words() {
        // Query made only of words common to all chunks should not strongly
        // prefer any chunk under the IDF-weighted encoder.
        let chunks = vec![
            "the report about the project".to_string(),
            "the report about the budget".to_string(),
            "the report about the zebra migration".to_string(),
        ];
        let scorer = ContrieverSim::new();
        let scores = scorer.score("zebra migration", &chunks);
        assert!(scores[2] > scores[0] && scores[2] > scores[1]);
    }

    #[test]
    fn encoder_quality_ordering_on_needle_retrieval() {
        // Build a retrieval benchmark with many filler chunks and one
        // needle; measure how often each encoder ranks the needle first.
        let mut filler: Vec<String> = (0..30)
            .map(|i| {
                format!(
                    "section {i} routine update covering logistics schedule planning \
                     inventory maintenance personnel catering transport rotation"
                )
            })
            .collect();
        let queries: Vec<(usize, String, String)> = (0..12)
            .map(|q| {
                let code = format!("secret-token-{q}");
                let needle = format!("classified entry: the access phrase for gate {q} is {code}");
                (
                    q,
                    format!("what is the access phrase for gate {q}?"),
                    needle,
                )
            })
            .collect();

        let mut hits = std::collections::HashMap::new();
        for (q, query, needle) in &queries {
            let mut chunks = filler.clone();
            let needle_pos = q % filler.len();
            chunks[needle_pos] = needle.clone();
            for (name, scorer) in [
                (
                    "contriever",
                    Box::new(ContrieverSim::new()) as Box<dyn ChunkScorer>,
                ),
                ("llm-embedder", Box::new(LlmEmbedderSim::new())),
                ("ada", Box::new(AdaSim::new())),
            ] {
                let scores = scorer.score(query, &chunks);
                let best = scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap()
                    .0;
                if best == needle_pos {
                    *hits.entry(name).or_insert(0usize) += 1;
                }
            }
        }
        // Rotate filler so the borrow checker is happy about reuse above.
        filler.rotate_left(1);
        let contriever = *hits.get("contriever").unwrap_or(&0);
        let ada = *hits.get("ada").unwrap_or(&0);
        assert!(
            contriever >= ada,
            "contriever-sim ({contriever}) should be at least as good as ada-sim ({ada})"
        );
        assert!(
            contriever >= 10,
            "contriever-sim should almost always find the needle"
        );
    }
}
