//! The chunk-scoring interface used by the quantization search module.

use crate::{AdaSim, Bm25, ContrieverSim, LlmEmbedderSim};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Scores context chunks against a query.
///
/// Higher scores mean "more relevant to the query"; the Cocktail search
/// module only compares scores from the *same* scorer against each other
/// (its thresholds are defined relative to the per-query score range), so
/// scorers are free to use any monotone scale. Dense encoders return cosine
/// similarities in `[-1, 1]`; BM25 returns unbounded non-negative scores.
pub trait ChunkScorer {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// Scores every chunk against the query. The returned vector has one
    /// entry per chunk, in order.
    fn score(&self, query: &str, chunks: &[String]) -> Vec<f32>;
}

/// The encoder families compared in Table IV of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EncoderKind {
    /// Stand-in for OpenAI ADA-002 embeddings.
    Ada002,
    /// Classical BM25 lexical scoring.
    Bm25,
    /// Stand-in for the LLM-Embedder model.
    LlmEmbedder,
    /// Stand-in for Facebook-Contriever (the paper's choice).
    Contriever,
}

impl EncoderKind {
    /// All encoder kinds in the order of the paper's Table IV.
    pub const ALL: [EncoderKind; 4] = [
        EncoderKind::Ada002,
        EncoderKind::Bm25,
        EncoderKind::LlmEmbedder,
        EncoderKind::Contriever,
    ];

    /// Instantiates the scorer for this encoder kind.
    pub fn build(self) -> Box<dyn ChunkScorer> {
        match self {
            EncoderKind::Ada002 => Box::new(AdaSim::new()),
            EncoderKind::Bm25 => Box::new(Bm25::new()),
            EncoderKind::LlmEmbedder => Box::new(LlmEmbedderSim::new()),
            EncoderKind::Contriever => Box::new(ContrieverSim::new()),
        }
    }

    /// Display name matching the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            EncoderKind::Ada002 => "ADA-002",
            EncoderKind::Bm25 => "BM25",
            EncoderKind::LlmEmbedder => "LLM Embedder",
            EncoderKind::Contriever => "Facebook-Contriever",
        }
    }
}

impl fmt::Display for EncoderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_and_score() {
        let chunks = vec![
            "the cat sat on the mat".to_string(),
            "quantum entanglement of qubits".to_string(),
        ];
        for kind in EncoderKind::ALL {
            let scorer = kind.build();
            let scores = scorer.score("tell me about qubits", &chunks);
            assert_eq!(scores.len(), 2, "{kind} returned wrong length");
            assert!(scores.iter().all(|s| s.is_finite()));
        }
    }

    #[test]
    fn names_match_paper_table() {
        assert_eq!(EncoderKind::Contriever.to_string(), "Facebook-Contriever");
        assert_eq!(EncoderKind::Ada002.to_string(), "ADA-002");
        assert_eq!(EncoderKind::ALL.len(), 4);
    }

    #[test]
    fn scorer_trait_is_object_safe() {
        let scorers: Vec<Box<dyn ChunkScorer>> =
            EncoderKind::ALL.iter().map(|k| k.build()).collect();
        assert_eq!(scorers.len(), 4);
    }
}
