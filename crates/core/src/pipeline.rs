//! The end-to-end Cocktail inference pipeline.
//!
//! The pipeline follows Figure 2 of the paper: the context is chunked, the
//! chunk-level quantization search scores the chunks against the query, the
//! model prefills the prompt, the context KV cache is reordered and
//! quantized according to the plan (the query's own KV stays FP16, as do
//! the decode-phase output tokens), and the model decodes the answer over
//! the compressed cache.

use crate::config::CocktailConfig;
use crate::error::CocktailError;
use crate::policy::CocktailPolicy;
use crate::search::BitwidthPlan;
use crate::serving::RequestTask;
use cocktail_baselines::{CachePolicy, PolicyReport};
use cocktail_model::{InferenceEngine, ModelProfile};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wall-clock timings of one pipeline run, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PipelineTimings {
    /// Prefill phase (full-precision attention over the prompt).
    pub prefill_us: u64,
    /// Chunk-level quantization search plus cache rewriting.
    pub compress_us: u64,
    /// Decode phase (token generation over the compressed cache).
    pub decode_us: u64,
}

impl PipelineTimings {
    /// Total time across the measured phases.
    pub fn total_us(&self) -> u64 {
        self.prefill_us + self.compress_us + self.decode_us
    }
}

/// Everything one pipeline run produces.
#[derive(Debug, Clone)]
pub struct CocktailOutcome {
    /// The decoded answer text.
    pub answer: String,
    /// The generated token ids.
    pub generated_tokens: Vec<u32>,
    /// What the cache policy did.
    pub report: PolicyReport,
    /// The bitwidth plan (absent when the policy was not Cocktail or
    /// Module I was disabled).
    pub plan: Option<BitwidthPlan>,
    /// KV-cache bytes after compression (all layers and heads, including
    /// the FP16 query/remainder/output tokens).
    pub cache_bytes: usize,
    /// KV-cache bytes the same request would need at FP16.
    pub fp16_cache_bytes: usize,
    /// Wall-clock timings.
    pub timings: PipelineTimings,
}

impl CocktailOutcome {
    /// Measured KV-cache compression ratio (>1 means smaller than FP16).
    pub fn compression_ratio(&self) -> f64 {
        if self.cache_bytes == 0 {
            return 1.0;
        }
        self.fp16_cache_bytes as f64 / self.cache_bytes as f64
    }
}

/// The end-to-end pipeline: simulated model + Cocktail policy.
///
/// # Example
///
/// ```
/// use cocktail_core::{CocktailConfig, CocktailPipeline};
/// use cocktail_model::ModelProfile;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = CocktailConfig::default().with_chunk_size(8)?;
/// let pipeline = CocktailPipeline::new(ModelProfile::tiny(), config)?;
/// let context = "the cargo manifest lists forty crates of oranges. \
///                the harbour master signs off every shipment at dawn. \
///                the access word for the customs office is bluebird.";
/// let outcome = pipeline.run(context, "what is the access word?", 8)?;
/// assert!(!outcome.answer.is_empty());
/// assert!(outcome.compression_ratio() >= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CocktailPipeline {
    engine: InferenceEngine,
    config: CocktailConfig,
}

impl CocktailPipeline {
    /// Builds a pipeline for a model profile.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError`] if the profile or configuration is invalid.
    pub fn new(profile: ModelProfile, config: CocktailConfig) -> Result<Self, CocktailError> {
        config.validate()?;
        let engine = InferenceEngine::new(profile)?;
        Ok(Self { engine, config })
    }

    /// Builds a pipeline around an existing engine.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn with_engine(
        engine: InferenceEngine,
        config: CocktailConfig,
    ) -> Result<Self, CocktailError> {
        config.validate()?;
        Ok(Self { engine, config })
    }

    /// The underlying inference engine.
    pub fn engine(&self) -> &InferenceEngine {
        &self.engine
    }

    /// The Cocktail configuration.
    pub fn config(&self) -> &CocktailConfig {
        &self.config
    }

    /// Runs the full pipeline with the Cocktail policy.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError`] if the prompt is invalid for the model or
    /// any substrate operation fails.
    pub fn run(
        &self,
        context: &str,
        query: &str,
        max_new_tokens: usize,
    ) -> Result<CocktailOutcome, CocktailError> {
        let policy = CocktailPolicy::new(self.config.clone())?;
        self.run_with_policy(context, query, &policy, max_new_tokens)
    }

    /// Runs the pipeline with an arbitrary cache policy (FP16, Atom, KIVI,
    /// KVQuant or Cocktail), so methods can be compared on identical
    /// requests.
    ///
    /// This is a thin single-request wrapper over the serving machinery:
    /// the same `RequestTask` state machine the batched
    /// [`ServingEngine`](crate::ServingEngine) drives, run to completion
    /// here one decode step at a time. That shared path is what makes
    /// batched serving byte-identical to sequential pipeline runs.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError`] if the prompt is invalid for the model or
    /// any substrate operation fails.
    pub fn run_with_policy(
        &self,
        context: &str,
        query: &str,
        policy: &dyn CachePolicy,
        max_new_tokens: usize,
    ) -> Result<CocktailOutcome, CocktailError> {
        let mut task = RequestTask::prepare(
            &self.engine,
            &self.config,
            context,
            query,
            policy,
            max_new_tokens,
        )?;
        let decode_start = Instant::now();
        while !task.generate_next(&self.engine)? {}
        task.add_decode_us(decode_start.elapsed().as_micros() as u64);
        Ok(task.into_outcome(&self.engine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_baselines::{AtomPolicy, Fp16Policy};
    use cocktail_quant::Bitwidth;

    fn pipeline(chunk_size: usize) -> CocktailPipeline {
        CocktailPipeline::new(
            ModelProfile::tiny(),
            CocktailConfig::default()
                .with_chunk_size(chunk_size)
                .unwrap(),
        )
        .unwrap()
    }

    fn sample_context() -> String {
        let mut parts: Vec<String> = (0..10)
            .map(|i| {
                format!("daily log {i} covers weather supplies and morale nothing unusual reported")
            })
            .collect();
        parts[6] = "important notice the evacuation signal phrase is amber lantern".to_string();
        parts.join(" . ")
    }

    #[test]
    fn end_to_end_run_produces_answer_and_compression() {
        let pipeline = pipeline(16);
        let outcome = pipeline
            .run(
                &sample_context(),
                "what is the evacuation signal phrase?",
                6,
            )
            .unwrap();
        assert_eq!(outcome.generated_tokens.len(), 6);
        assert!(!outcome.answer.is_empty());
        assert!(outcome.compression_ratio() > 1.0);
        assert!(outcome.cache_bytes < outcome.fp16_cache_bytes);
        assert!(outcome.plan.is_some());
        let plan = outcome.plan.as_ref().unwrap();
        assert!(plan.count(Bitwidth::Int2) > 0);
    }

    #[test]
    fn fp16_policy_run_has_ratio_one() {
        let pipeline = pipeline(16);
        let outcome = pipeline
            .run_with_policy(
                &sample_context(),
                "what about morale?",
                &Fp16Policy::new(),
                4,
            )
            .unwrap();
        assert!((outcome.compression_ratio() - 1.0).abs() < 1e-9);
        assert!(outcome.plan.is_none());
    }

    #[test]
    fn atom_policy_compresses_more_uniformly_than_cocktail_keeps_relevant() {
        let pipeline = pipeline(16);
        let cocktail = pipeline
            .run(
                &sample_context(),
                "what is the evacuation signal phrase?",
                4,
            )
            .unwrap();
        let atom = pipeline
            .run_with_policy(
                &sample_context(),
                "what is the evacuation signal phrase?",
                &AtomPolicy::default(),
                4,
            )
            .unwrap();
        // Cocktail keeps some chunks FP16, so it compresses less than pure
        // INT4 Atom but still well below FP16.
        assert!(cocktail.cache_bytes < cocktail.fp16_cache_bytes);
        assert!(atom.cache_bytes < cocktail.fp16_cache_bytes);
        assert_eq!(atom.report.chunks_at(Bitwidth::Fp16), 0);
        assert!(cocktail.report.chunks_at(Bitwidth::Fp16) > 0);
    }

    #[test]
    fn rejects_empty_inputs() {
        let pipeline = pipeline(16);
        assert!(pipeline.run("", "question", 4).is_err());
        assert!(pipeline.run("some context", "", 4).is_err());
    }

    #[test]
    fn timings_are_populated() {
        let pipeline = pipeline(16);
        let outcome = pipeline
            .run(&sample_context(), "what supplies are mentioned?", 3)
            .unwrap();
        assert!(outcome.timings.prefill_us > 0);
        assert!(outcome.timings.total_us() >= outcome.timings.prefill_us);
    }

    #[test]
    fn short_context_with_no_full_chunk_still_runs() {
        let pipeline = pipeline(64);
        // Fewer than 64 context words: zero chunks, everything in FP16
        // remainder, the policy has nothing to do.
        let outcome = pipeline
            .run(
                "tiny context with a handful of words only",
                "what is this?",
                3,
            )
            .unwrap();
        assert_eq!(outcome.report.total_chunks(), 0);
        assert!((outcome.compression_ratio() - 1.0).abs() < 1e-9);
    }
}
