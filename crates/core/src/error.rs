//! Error type for the Cocktail method.

use std::error::Error;
use std::fmt;

/// Error raised by the Cocktail search, reordering, attention or pipeline
/// code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CocktailError {
    /// The configuration is invalid (e.g. α or β out of range).
    InvalidConfig(String),
    /// The inputs to the search or attention do not line up.
    InvalidInput(String),
    /// An underlying cache, model or quantization operation failed.
    Substrate(String),
}

impl fmt::Display for CocktailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CocktailError::InvalidConfig(d) => write!(f, "invalid cocktail configuration: {d}"),
            CocktailError::InvalidInput(d) => write!(f, "invalid cocktail input: {d}"),
            CocktailError::Substrate(d) => write!(f, "substrate operation failed: {d}"),
        }
    }
}

impl Error for CocktailError {}

impl From<cocktail_kvcache::KvCacheError> for CocktailError {
    fn from(err: cocktail_kvcache::KvCacheError) -> Self {
        CocktailError::Substrate(err.to_string())
    }
}

impl From<cocktail_tensor::ShapeError> for CocktailError {
    fn from(err: cocktail_tensor::ShapeError) -> Self {
        CocktailError::Substrate(err.to_string())
    }
}

impl From<cocktail_quant::QuantError> for CocktailError {
    fn from(err: cocktail_quant::QuantError) -> Self {
        CocktailError::Substrate(err.to_string())
    }
}

impl From<cocktail_model::ModelError> for CocktailError {
    fn from(err: cocktail_model::ModelError) -> Self {
        CocktailError::Substrate(err.to_string())
    }
}

impl From<cocktail_baselines::PolicyError> for CocktailError {
    fn from(err: cocktail_baselines::PolicyError) -> Self {
        CocktailError::Substrate(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CocktailError::InvalidConfig("alpha".into())
            .to_string()
            .contains("alpha"));
        assert!(CocktailError::InvalidInput("chunks".into())
            .to_string()
            .contains("chunks"));
    }

    #[test]
    fn conversions_from_substrates() {
        let e: CocktailError = cocktail_kvcache::KvCacheError::ZeroChunkSize.into();
        assert!(matches!(e, CocktailError::Substrate(_)));
        let e: CocktailError = cocktail_quant::QuantError::ZeroGroupSize.into();
        assert!(matches!(e, CocktailError::Substrate(_)));
        let e: CocktailError = cocktail_model::ModelError::InvalidPrompt("x".into()).into();
        assert!(matches!(e, CocktailError::Substrate(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CocktailError>();
    }
}
