//! The batch scheduler: admission control under a KV-memory budget.
//!
//! The scheduler is deliberately independent of the model: it deals in
//! request ids and *measured byte costs* (the compressed KV footprint of a
//! prepared request plus its reserved FP16 decode tail). That keeps the
//! admission logic a small, exhaustively testable state machine, and makes
//! the paper's economics explicit — Cocktail's compression shrinks each
//! request's cost, so more requests fit under the same budget and batch
//! capacity (hence throughput) goes up.
//!
//! Admission is strict FIFO: the head of the queue is admitted as soon as
//! its cost fits the remaining budget (and the batch cap), and later
//! requests never jump the queue. This head-of-line blocking is what makes
//! batched serving deterministic and starvation-free.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of one serving request, unique within a
/// [`ServingEngine`](crate::ServingEngine).
///
/// Ids are handed out in submission order, so sorting by id recovers the
/// order in which requests entered the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id from its raw index.
    pub fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw numeric id.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Configuration of the [`BatchScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// KV-memory budget in bytes shared by all admitted requests, or `None`
    /// for an unlimited budget. Costs are measured *compressed* bytes, so a
    /// stronger quantization policy admits more concurrent requests. When a
    /// prefix cache is enabled, its resident blocks are charged against the
    /// same budget — once per *trie node*, however many cached branches or
    /// in-flight requests share that node's run.
    pub kv_budget_bytes: Option<usize>,
    /// Maximum number of concurrently running requests, regardless of
    /// memory (a kernel/occupancy cap in real deployments).
    pub max_batch: usize,
    /// Up to this many queued requests are prefilled together in one
    /// batched prefill pass during admission (amortizing weight streaming
    /// across the newly arriving prompts). Each prepared-but-deferred
    /// request keeps its compressed cache resident until admitted, so this
    /// also bounds how many prepared caches can sit outside the budget at
    /// once.
    pub prefill_window: usize,
}

/// Default number of requests prefilled together during admission.
pub const DEFAULT_PREFILL_WINDOW: usize = 4;

impl SchedulerConfig {
    /// Unlimited memory and a practically unlimited batch.
    pub fn unlimited() -> Self {
        Self {
            kv_budget_bytes: None,
            max_batch: usize::MAX,
            prefill_window: DEFAULT_PREFILL_WINDOW,
        }
    }

    /// Returns a copy with the given KV-memory budget.
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.kv_budget_bytes = Some(bytes);
        self
    }

    /// Returns a copy with the given batch cap.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Returns a copy with the given batched-prefill window (clamped to at
    /// least 1; a window of 1 reproduces strictly sequential admission
    /// prefills).
    pub fn with_prefill_window(mut self, window: usize) -> Self {
        self.prefill_window = window.max(1);
        self
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Outcome of one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// The request was admitted and its cost charged against the budget.
    Admitted,
    /// The request fits the budget in principle but not right now; it stays
    /// at the head of the queue until running requests release memory.
    DeferredBudget,
    /// The running batch is at `max_batch`; the request stays queued.
    DeferredBatch,
    /// The request can *never* fit (its cost alone exceeds the whole
    /// budget); it is removed from the queue and should be failed.
    Rejected,
}

/// FIFO admission control with exact byte accounting.
///
/// The scheduler tracks which requests are queued and which are running,
/// charges each admitted request's measured cost against the budget, and
/// releases the charge when the request completes. The invariant it
/// guarantees — checked by property tests — is that the sum of admitted
/// costs never exceeds the budget, under any interleaving of admissions and
/// completions.
///
/// # Example
///
/// ```
/// use cocktail_core::{AdmitDecision, BatchScheduler, RequestId, SchedulerConfig};
///
/// let mut scheduler = BatchScheduler::new(SchedulerConfig::default().with_budget(1000));
/// let a = RequestId::new(0);
/// let b = RequestId::new(1);
/// scheduler.enqueue(a);
/// scheduler.enqueue(b);
/// assert_eq!(scheduler.try_admit(a, 700), AdmitDecision::Admitted);
/// // b must wait: 700 + 400 would blow the budget.
/// assert_eq!(scheduler.try_admit(b, 400), AdmitDecision::DeferredBudget);
/// scheduler.complete(a);
/// assert_eq!(scheduler.try_admit(b, 400), AdmitDecision::Admitted);
/// ```
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    config: SchedulerConfig,
    queue: VecDeque<RequestId>,
    running: Vec<(RequestId, usize)>,
    request_bytes: usize,
    shared_bytes: usize,
}

impl BatchScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        Self {
            config,
            queue: VecDeque::new(),
            running: Vec::new(),
            request_bytes: 0,
            shared_bytes: 0,
        }
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Appends a request to the tail of the admission queue.
    pub fn enqueue(&mut self, id: RequestId) {
        self.queue.push_back(id);
    }

    /// The request next in line for admission, if any.
    pub fn head(&self) -> Option<RequestId> {
        self.queue.front().copied()
    }

    /// Attempts to admit the *head* request with its measured cost.
    ///
    /// On [`AdmitDecision::Admitted`] the request moves from the queue to
    /// the running set and `cost_bytes` is charged against the budget. On
    /// [`AdmitDecision::Rejected`] the request is dropped from the queue.
    /// The deferred outcomes leave the queue untouched.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the head of the queue — FIFO admission is part
    /// of the determinism contract, so skipping is a caller bug.
    pub fn try_admit(&mut self, id: RequestId, cost_bytes: usize) -> AdmitDecision {
        assert_eq!(
            self.head(),
            Some(id),
            "only the head of the queue may be admitted (FIFO)"
        );
        if let Some(budget) = self.config.kv_budget_bytes {
            if cost_bytes > budget {
                self.queue.pop_front();
                return AdmitDecision::Rejected;
            }
        }
        // The batch cap is checked before the budget: a DeferredBudget
        // verdict invites the caller to free memory (e.g. evict shared
        // prefix blocks), which is pointless while the batch is full.
        if self.running.len() >= self.config.max_batch {
            return AdmitDecision::DeferredBatch;
        }
        if let Some(budget) = self.config.kv_budget_bytes {
            if self.used_bytes() + cost_bytes > budget {
                return AdmitDecision::DeferredBudget;
            }
        }
        self.queue.pop_front();
        self.running.push((id, cost_bytes));
        self.request_bytes += cost_bytes;
        AdmitDecision::Admitted
    }

    /// Removes the head request from the queue without admitting it (used
    /// when a request fails before admission, e.g. invalid input).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the head of the queue.
    pub fn drop_head(&mut self, id: RequestId) {
        assert_eq!(
            self.head(),
            Some(id),
            "only the head of the queue may be dropped"
        );
        self.queue.pop_front();
    }

    /// Removes a request from anywhere in the admission queue (the
    /// cancellation path: FIFO constrains *admission* order, but a
    /// cancelled request simply departs). Returns whether it was queued.
    pub fn remove_queued(&mut self, id: RequestId) -> bool {
        let before = self.queue.len();
        self.queue.retain(|&queued| queued != id);
        self.queue.len() != before
    }

    /// Marks a running request as complete, releasing its charged bytes.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not currently running.
    pub fn complete(&mut self, id: RequestId) {
        let idx = self
            .running
            .iter()
            .position(|(r, _)| *r == id)
            .expect("completed request must be running");
        let (_, cost) = self.running.remove(idx);
        self.request_bytes -= cost;
    }

    /// Ids of the running requests in admission order (the round-robin
    /// decode order).
    pub fn running(&self) -> Vec<RequestId> {
        self.running.iter().map(|(id, _)| *id).collect()
    }

    /// Ids of the queued requests in FIFO order (head first).
    pub fn queued_ids(&self) -> Vec<RequestId> {
        self.queue.iter().copied().collect()
    }

    /// Number of running requests.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Number of queued (not yet admitted) requests.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Bytes currently charged against the budget: admitted request costs
    /// plus resident shared prefix-cache blocks.
    pub fn used_bytes(&self) -> usize {
        self.request_bytes + self.shared_bytes
    }

    /// Bytes charged for admitted requests only.
    pub fn request_bytes(&self) -> usize {
        self.request_bytes
    }

    /// Bytes charged for shared prefix-cache blocks.
    pub fn shared_bytes(&self) -> usize {
        self.shared_bytes
    }

    /// Replaces the shared-block charge with the prefix cache's current
    /// resident footprint — the sum over resident trie nodes, so shared
    /// blocks are charged *once per node* regardless of how many cached
    /// branches pass through it or how many requests reference it; the
    /// owner (the serving engine) reports the cache's total after every
    /// insertion or eviction.
    pub fn set_shared_bytes(&mut self, bytes: usize) {
        self.shared_bytes = bytes;
    }

    /// Whether `additional` more shared bytes would still fit the budget
    /// alongside everything currently charged.
    pub fn would_fit_shared(&self, additional: usize) -> bool {
        self.config
            .kv_budget_bytes
            .map_or(true, |budget| self.used_bytes() + additional <= budget)
    }

    /// Bytes still available under the budget (`None` when unlimited).
    pub fn remaining_bytes(&self) -> Option<usize> {
        self.config
            .kv_budget_bytes
            .map(|b| b.saturating_sub(self.used_bytes()))
    }

    /// Whether the scheduler has no queued or running requests.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scheduler(budget: Option<usize>, max_batch: usize) -> BatchScheduler {
        BatchScheduler::new(SchedulerConfig {
            kv_budget_bytes: budget,
            max_batch,
            prefill_window: DEFAULT_PREFILL_WINDOW,
        })
    }

    #[test]
    fn shared_bytes_count_against_the_budget() {
        let mut s = scheduler(Some(100), usize::MAX);
        assert!(s.would_fit_shared(100));
        assert!(!s.would_fit_shared(101));
        s.set_shared_bytes(40);
        assert_eq!(s.shared_bytes(), 40);
        assert_eq!(s.used_bytes(), 40);
        assert_eq!(s.remaining_bytes(), Some(60));
        assert!(s.would_fit_shared(20));
        assert!(!s.would_fit_shared(61));

        let id = RequestId::new(0);
        s.enqueue(id);
        // 70 request bytes + 40 shared would exceed 100: deferred, not
        // rejected (eviction could free the shared charge).
        assert_eq!(s.try_admit(id, 70), AdmitDecision::DeferredBudget);
        s.set_shared_bytes(10);
        assert_eq!(s.try_admit(id, 70), AdmitDecision::Admitted);
        assert_eq!(s.used_bytes(), 80);
        assert_eq!(s.request_bytes(), 70);
        s.complete(id);
        assert_eq!(s.used_bytes(), 10);
    }

    #[test]
    fn full_batch_wins_over_tight_budget_in_deferral_verdicts() {
        let mut s = scheduler(Some(100), 1);
        let a = RequestId::new(0);
        let b = RequestId::new(1);
        s.enqueue(a);
        s.enqueue(b);
        assert_eq!(s.try_admit(a, 60), AdmitDecision::Admitted);
        // b is blocked by both the batch cap and the budget; the cap
        // verdict must win so callers don't evict shared memory they could
        // not use anyway.
        assert_eq!(s.try_admit(b, 60), AdmitDecision::DeferredBatch);
        s.complete(a);
        assert_eq!(s.try_admit(b, 60), AdmitDecision::Admitted);
    }

    #[test]
    fn prefill_window_is_clamped_to_one() {
        let config = SchedulerConfig::default().with_prefill_window(0);
        assert_eq!(config.prefill_window, 1);
        assert_eq!(
            SchedulerConfig::default().prefill_window,
            DEFAULT_PREFILL_WINDOW
        );
    }

    #[test]
    fn fifo_admission_and_release() {
        let mut s = scheduler(Some(100), usize::MAX);
        let ids: Vec<RequestId> = (0..3).map(RequestId::new).collect();
        for &id in &ids {
            s.enqueue(id);
        }
        assert_eq!(s.try_admit(ids[0], 60), AdmitDecision::Admitted);
        assert_eq!(s.try_admit(ids[1], 60), AdmitDecision::DeferredBudget);
        assert_eq!(s.used_bytes(), 60);
        s.complete(ids[0]);
        assert_eq!(s.used_bytes(), 0);
        assert_eq!(s.try_admit(ids[1], 60), AdmitDecision::Admitted);
        assert_eq!(s.try_admit(ids[2], 30), AdmitDecision::Admitted);
        assert_eq!(s.running(), vec![ids[1], ids[2]]);
    }

    #[test]
    fn oversized_request_is_rejected_not_deferred() {
        let mut s = scheduler(Some(100), usize::MAX);
        let id = RequestId::new(7);
        s.enqueue(id);
        assert_eq!(s.try_admit(id, 101), AdmitDecision::Rejected);
        assert!(s.is_idle());
    }

    #[test]
    fn batch_cap_defers_admission() {
        let mut s = scheduler(None, 1);
        let a = RequestId::new(0);
        let b = RequestId::new(1);
        s.enqueue(a);
        s.enqueue(b);
        assert_eq!(s.try_admit(a, 10), AdmitDecision::Admitted);
        assert_eq!(s.try_admit(b, 10), AdmitDecision::DeferredBatch);
        s.complete(a);
        assert_eq!(s.try_admit(b, 10), AdmitDecision::Admitted);
    }

    #[test]
    fn remove_queued_departs_from_any_position() {
        let mut s = scheduler(None, usize::MAX);
        let ids: Vec<RequestId> = (0..3).map(RequestId::new).collect();
        for &id in &ids {
            s.enqueue(id);
        }
        // Remove from the middle: FIFO admission order of the rest holds.
        assert!(s.remove_queued(ids[1]));
        assert!(!s.remove_queued(ids[1]), "already gone");
        assert_eq!(s.queued_ids(), vec![ids[0], ids[2]]);
        assert_eq!(s.try_admit(ids[0], 1), AdmitDecision::Admitted);
        assert_eq!(s.try_admit(ids[2], 1), AdmitDecision::Admitted);
        assert!(s.queued_ids().is_empty());
    }

    #[test]
    #[should_panic(expected = "FIFO")]
    fn admitting_out_of_order_panics() {
        let mut s = scheduler(None, usize::MAX);
        s.enqueue(RequestId::new(0));
        s.enqueue(RequestId::new(1));
        s.try_admit(RequestId::new(1), 10);
    }

    #[test]
    fn display_and_raw_roundtrip() {
        let id = RequestId::new(42);
        assert_eq!(id.to_string(), "req-42");
        assert_eq!(id.raw(), 42);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Under any budget and any cost sequence, driving the scheduler to
        /// quiescence (admit when possible, otherwise retire the oldest
        /// running request) never exceeds the budget and leaves every
        /// request either completed or rejected.
        #[test]
        fn budget_is_never_exceeded_and_every_request_terminates(
            budget in 1usize..5000,
            max_batch in 1usize..6,
            costs in proptest::collection::vec(1usize..2000, 1..24),
        ) {
            let mut s = scheduler(Some(budget), max_batch);
            for (i, _) in costs.iter().enumerate() {
                s.enqueue(RequestId::new(i as u64));
            }
            let mut completed = 0usize;
            let mut rejected = 0usize;
            let mut guard = 0usize;
            while !s.is_idle() {
                guard += 1;
                prop_assert!(guard < 10_000, "scheduler failed to quiesce");
                // Admit as long as the head fits.
                while let Some(head) = s.head() {
                    let cost = costs[head.raw() as usize];
                    match s.try_admit(head, cost) {
                        AdmitDecision::Admitted => {}
                        AdmitDecision::Rejected => rejected += 1,
                        AdmitDecision::DeferredBudget | AdmitDecision::DeferredBatch => break,
                    }
                    prop_assert!(s.used_bytes() <= budget, "budget exceeded");
                }
                // Retire the oldest running request (simulates completion).
                if let Some(&oldest) = s.running().first() {
                    s.complete(oldest);
                    completed += 1;
                }
                prop_assert!(s.used_bytes() <= budget);
            }
            prop_assert_eq!(completed + rejected, costs.len());
            // With a budget at least as large as the biggest request,
            // nothing is ever rejected.
            if costs.iter().all(|&c| c <= budget) {
                prop_assert_eq!(rejected, 0);
            }
        }
    }
}
