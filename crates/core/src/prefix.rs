//! The serving-side prefix cache: longest-common-prefix reuse of prefill
//! work across requests.
//!
//! Real traffic is full of requests that open with the same tokens — a
//! system prompt, a shared document, a few-shot preamble. The
//! [`PrefixCache`] maps encoded context token sequences to the raw
//! [`SharedPrefixKv`] blocks their prefill produced, so a later request
//! whose context starts with a cached sequence clones refcounted block
//! handles instead of re-running the (quadratic) prefill attention over the
//! shared part. Entries are charged once against the serving KV budget —
//! however many in-flight requests reference them — and evicted LRU when
//! the budget tightens, skipping entries still pinned by an in-flight
//! prefill.
//!
//! The structure is a longest-common-prefix map rather than a token trie:
//! entries are whole context sequences, lookups scan for the entry with the
//! longest common prefix, and an entry that is a strict prefix of a newly
//! inserted one is subsumed by it. With the small entry counts a single
//! serving engine holds (tens, not millions) the linear scan is cheaper
//! than maintaining trie nodes, and divergent branches simply hold their
//! own blocks.

use cocktail_kvcache::SharedPrefixKv;
use serde::{Deserialize, Serialize};

/// Configuration of the [`PrefixCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixCacheConfig {
    /// Maximum number of resident entries; LRU-evicted beyond this.
    pub max_entries: usize,
    /// Minimum number of matching leading tokens before a cached prefix is
    /// reused (tiny matches are not worth the bookkeeping).
    pub min_prefix_tokens: usize,
}

impl PrefixCacheConfig {
    /// Returns a copy with a different entry cap.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries.max(1);
        self
    }

    /// Returns a copy with a different reuse threshold.
    pub fn with_min_prefix_tokens(mut self, tokens: usize) -> Self {
        self.min_prefix_tokens = tokens.max(1);
        self
    }
}

impl Default for PrefixCacheConfig {
    fn default() -> Self {
        Self {
            max_entries: 32,
            min_prefix_tokens: 8,
        }
    }
}

/// Counters and occupancy of a [`PrefixCache`], serializable into
/// experiment records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixCacheStats {
    /// Resident entries.
    pub entries: usize,
    /// Resident entries currently pinned by an in-flight request (their
    /// blocks are referenced beyond the cache's own handle, so LRU
    /// eviction skips them).
    pub pinned_entries: usize,
    /// Bytes of resident shared blocks (what the scheduler is charged).
    pub resident_bytes: usize,
    /// Lookups that found a reusable prefix.
    pub hits: u64,
    /// Lookups that found nothing (or a match below the reuse threshold).
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted (LRU) or subsumed by a longer entry.
    pub evictions: u64,
    /// Total prompt tokens served from cached blocks instead of being
    /// re-prefilled.
    pub reused_tokens: u64,
}

#[derive(Debug)]
struct PrefixEntry {
    tokens: Vec<u32>,
    kv: SharedPrefixKv,
    last_used: u64,
}

/// Length of the common prefix of two token sequences.
pub(crate) fn common_prefix_len(a: &[u32], b: &[u32]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// A longest-common-prefix map from context token sequences to shared
/// prefill KV blocks.
///
/// # Example
///
/// ```
/// use cocktail_core::{PrefixCache, PrefixCacheConfig};
/// use cocktail_kvcache::{PrefixKvBlock, SharedPrefixKv};
/// use cocktail_tensor::rng::gaussian_matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let kv = SharedPrefixKv::from_blocks(
///     1,
///     1,
///     vec![PrefixKvBlock::new(
///         gaussian_matrix(12, 4, 1.0, 1),
///         gaussian_matrix(12, 4, 1.0, 2),
///     )?],
/// )?;
/// let mut cache = PrefixCache::new(PrefixCacheConfig::default());
/// let tokens: Vec<u32> = (0..12).collect();
/// cache.insert(tokens.clone(), kv);
/// // A request sharing the first 10 tokens reuses them from the cache.
/// let request: Vec<u32> = tokens[..10].iter().copied().chain([99, 98]).collect();
/// let (_blocks, reused) = cache.lookup(&request).expect("prefix hit");
/// assert_eq!(reused, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PrefixCache {
    config: PrefixCacheConfig,
    entries: Vec<PrefixEntry>,
    clock: u64,
    stats: PrefixCacheStats,
}

impl PrefixCache {
    /// Creates an empty cache.
    pub fn new(config: PrefixCacheConfig) -> Self {
        Self {
            config,
            entries: Vec::new(),
            clock: 0,
            stats: PrefixCacheStats::default(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &PrefixCacheConfig {
        &self.config
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of all resident shared blocks — the amount a KV budget should
    /// be charged for the cache.
    pub fn total_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.kv.storage_bytes()).sum()
    }

    /// Number of resident entries whose blocks an in-flight request still
    /// references (see [`SharedPrefixKv::is_pinned`]).
    pub fn pinned_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.kv.is_pinned()).count()
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> PrefixCacheStats {
        PrefixCacheStats {
            entries: self.len(),
            pinned_entries: self.pinned_entries(),
            resident_bytes: self.total_bytes(),
            ..self.stats
        }
    }

    /// Whether some entry's tokens start with `tokens` (so inserting
    /// `tokens` would add nothing).
    pub fn covers(&self, tokens: &[u32]) -> bool {
        self.entries
            .iter()
            .any(|e| e.tokens.len() >= tokens.len() && e.tokens.starts_with(tokens))
    }

    /// The longest common prefix any entry shares with `tokens`, without
    /// touching LRU stamps or hit/miss counters — a probe for planning
    /// (e.g. deciding which admission pass a request belongs to) ahead of
    /// the real [`PrefixCache::lookup`].
    pub fn peek_prefix_len(&self, tokens: &[u32]) -> usize {
        self.entries
            .iter()
            .map(|e| common_prefix_len(&e.tokens, tokens))
            .max()
            .unwrap_or(0)
    }

    /// Finds the entry sharing the longest common prefix with `tokens` (at
    /// least the configured minimum), bumps its LRU stamp, and returns a
    /// cloned — refcount-bumped, not copied — block handle together with
    /// the number of reusable leading tokens.
    pub fn lookup(&mut self, tokens: &[u32]) -> Option<(SharedPrefixKv, usize)> {
        let best = self
            .entries
            .iter_mut()
            .map(|e| {
                let lcp = common_prefix_len(&e.tokens, tokens);
                (lcp, e)
            })
            .max_by_key(|(lcp, _)| *lcp);
        match best {
            Some((lcp, entry)) if lcp >= self.config.min_prefix_tokens => {
                self.clock += 1;
                entry.last_used = self.clock;
                self.stats.hits += 1;
                self.stats.reused_tokens += lcp as u64;
                Some((entry.kv.clone(), lcp))
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts the blocks of one context token sequence.
    ///
    /// If an existing entry already covers `tokens` (its sequence starts
    /// with them) the insert is a no-op beyond touching that entry's LRU
    /// stamp. Existing entries that are strict prefixes of `tokens` are
    /// subsumed (removed) — the new, longer entry serves every lookup they
    /// could. Beyond `max_entries`, least-recently-used unpinned entries
    /// are evicted.
    pub fn insert(&mut self, tokens: Vec<u32>, kv: SharedPrefixKv) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.tokens.len() >= tokens.len() && e.tokens.starts_with(&tokens))
        {
            existing.last_used = clock;
            return;
        }
        let before = self.entries.len();
        self.entries
            .retain(|e| !(e.tokens.len() < tokens.len() && tokens.starts_with(&e.tokens)));
        self.stats.evictions += (before - self.entries.len()) as u64;
        self.entries.push(PrefixEntry {
            tokens,
            kv,
            last_used: clock,
        });
        self.stats.insertions += 1;
        while self.entries.len() > self.config.max_entries {
            if self.evict_lru_unpinned().is_none() {
                break; // everything is pinned; allow temporary overflow
            }
        }
    }

    /// Evicts the least-recently-used entry whose blocks no in-flight
    /// prefill still references, returning the bytes freed.
    pub fn evict_lru_unpinned(&mut self) -> Option<usize> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.kv.is_pinned())
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)?;
        let entry = self.entries.remove(idx);
        self.stats.evictions += 1;
        Some(entry.kv.storage_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_kvcache::PrefixKvBlock;
    use cocktail_tensor::rng::gaussian_matrix;

    fn kv(tokens: usize, seed: u64) -> SharedPrefixKv {
        SharedPrefixKv::from_blocks(
            1,
            1,
            vec![PrefixKvBlock::new(
                gaussian_matrix(tokens, 4, 1.0, seed),
                gaussian_matrix(tokens, 4, 1.0, seed + 500),
            )
            .unwrap()],
        )
        .unwrap()
    }

    fn seq(start: u32, len: usize) -> Vec<u32> {
        (start..start + len as u32).collect()
    }

    fn small_cache() -> PrefixCache {
        PrefixCache::new(PrefixCacheConfig::default().with_min_prefix_tokens(4))
    }

    #[test]
    fn lookup_returns_longest_common_prefix() {
        let mut cache = small_cache();
        cache.insert(seq(0, 10), kv(10, 1));
        let mut other = seq(0, 6);
        other.extend(seq(100, 6)); // shares 6 tokens then diverges
        cache.insert(other.clone(), kv(12, 2));

        let mut query = seq(0, 8);
        query.push(999);
        let (_, reused) = cache.lookup(&query).unwrap();
        assert_eq!(reused, 8, "the 10-token entry shares 8 leading tokens");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.reused_tokens, 8);
    }

    #[test]
    fn short_matches_are_misses() {
        let mut cache = small_cache();
        cache.insert(seq(0, 10), kv(10, 1));
        let mut query = seq(0, 3); // below min_prefix_tokens = 4
        query.extend(seq(50, 8));
        assert!(cache.lookup(&query).is_none());
        assert!(cache.lookup(&seq(200, 10)).is_none());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn insert_subsumes_strict_prefixes_and_skips_covered() {
        let mut cache = small_cache();
        cache.insert(seq(0, 6), kv(6, 1));
        assert!(cache.covers(&seq(0, 6)));
        assert!(cache.covers(&seq(0, 4)));
        // Longer sequence subsumes the shorter entry.
        cache.insert(seq(0, 12), kv(12, 2));
        assert_eq!(cache.len(), 1);
        assert!(cache.covers(&seq(0, 12)));
        // Inserting something already covered is a no-op.
        cache.insert(seq(0, 9), kv(9, 3));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn lru_eviction_skips_pinned_entries() {
        let mut cache = PrefixCache::new(
            PrefixCacheConfig::default()
                .with_min_prefix_tokens(4)
                .with_max_entries(2),
        );
        cache.insert(seq(0, 8), kv(8, 1));
        cache.insert(seq(100, 8), kv(8, 2));
        // Pin the older entry by holding a handle to it.
        let (pinned, _) = cache.lookup(&seq(0, 8)).unwrap();
        // Now entry(100..) is the LRU and unpinned: the third insert evicts
        // it, not the pinned one.
        cache.insert(seq(200, 8), kv(8, 3));
        assert_eq!(cache.len(), 2);
        assert!(cache.covers(&seq(0, 8)), "pinned entry must survive");
        assert!(!cache.covers(&seq(100, 8)));
        drop(pinned);
        let freed = cache.evict_lru_unpinned().unwrap();
        assert!(freed > 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn total_bytes_tracks_entries() {
        let mut cache = small_cache();
        assert_eq!(cache.total_bytes(), 0);
        cache.insert(seq(0, 8), kv(8, 1));
        let one = cache.total_bytes();
        assert_eq!(one, 2 * 8 * 4 * 4); // k+v, 8 tokens, dim 4, f32
        cache.insert(seq(100, 8), kv(8, 2));
        assert_eq!(cache.total_bytes(), 2 * one);
        cache.evict_lru_unpinned().unwrap();
        assert_eq!(cache.total_bytes(), one);
        assert_eq!(cache.stats().resident_bytes, one);
    }
}
