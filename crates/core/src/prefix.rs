//! The serving-side prefix cache: a token trie that shares prefill work
//! across requests and across *branches* of requests.
//!
//! Real traffic is full of requests that open with the same tokens — a
//! system prompt, a shared document, a few-shot preamble — and then
//! diverge: two users continue the same preamble differently. The
//! [`PrefixCache`] stores context token sequences in a **path-compressed
//! token trie** whose nodes each own the refcounted [`SharedPrefixKv`]
//! rows of exactly their own token run. Divergent branches therefore share
//! their common-ancestor blocks *once*: inserting `P ++ X` and `P ++ Y`
//! stores `P`, `X` and `Y` — not `P` twice, as a whole-sequence map would.
//!
//! * **Lookups** walk the trie for the longest cached prefix of a request's
//!   context and return a [`PrefixHit`]: the assembled contiguous KV of the
//!   matched path plus pins on every node along it.
//! * **Inserts** split nodes at divergence points (a [`node split`] copies
//!   no more than the split node's own rows) and attach only the uncovered
//!   suffix as a new leaf.
//! * **Eviction is partial**: the LRU-evictable unit is a *leaf* node, so
//!   budget pressure trims the tree leaf-ward — recently hit or pinned
//!   ancestors survive and keep serving the shorter prefixes — instead of
//!   dropping whole contexts.
//!
//! Resident bytes are the sum over trie nodes (each node's segment rows are
//! one allocation), which is exactly what
//! [`BatchScheduler::set_shared_bytes`](crate::BatchScheduler::set_shared_bytes)
//! is charged: shared bytes are accounted **per trie node**, not per cached
//! sequence.
//!
//! [`node split`]: PrefixCacheStats::node_splits

use cocktail_kvcache::{
    read_snapshot, write_snapshot, SharedPrefixKv, SnapshotError, SnapshotNode, TrieSnapshot,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Weak};

/// Configuration of the [`PrefixCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixCacheConfig {
    /// Maximum number of resident trie nodes; leaf-first LRU eviction
    /// trims the tree beyond this.
    pub max_entries: usize,
    /// Minimum number of matching leading tokens before a cached prefix is
    /// reused (tiny matches are not worth the bookkeeping).
    pub min_prefix_tokens: usize,
}

impl PrefixCacheConfig {
    /// Returns a copy with a different node cap (clamped to at least 1).
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries.max(1);
        self
    }

    /// Returns a copy with a different reuse threshold (clamped to at
    /// least 1).
    pub fn with_min_prefix_tokens(mut self, tokens: usize) -> Self {
        self.min_prefix_tokens = tokens.max(1);
        self
    }
}

impl Default for PrefixCacheConfig {
    fn default() -> Self {
        Self {
            max_entries: 32,
            min_prefix_tokens: 8,
        }
    }
}

/// Counters and occupancy of a [`PrefixCache`], serializable into
/// experiment records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixCacheStats {
    /// Resident leaf nodes — the number of distinct cached context
    /// branches.
    pub entries: usize,
    /// Resident trie nodes (every node owns one refcounted block run).
    pub nodes: usize,
    /// Resident nodes currently pinned by an in-flight request's
    /// [`PrefixHit`] lease (LRU eviction skips them).
    pub pinned_entries: usize,
    /// Bytes of resident shared blocks, summed **per trie node** (what the
    /// scheduler is charged).
    pub resident_bytes: usize,
    /// Lookups that found a reusable prefix.
    pub hits: u64,
    /// Lookups that found nothing (or a match below the reuse threshold).
    pub misses: u64,
    /// Context sequences inserted (those adding at least one node).
    pub insertions: u64,
    /// Nodes split at a divergence point so two branches could share their
    /// common ancestor exactly once.
    pub node_splits: u64,
    /// Nodes evicted under LRU / budget pressure.
    pub evictions: u64,
    /// Evictions that trimmed a branch leaf-ward while an ancestor of the
    /// evicted node stayed resident (the trie's partial eviction; the
    /// remainder of [`PrefixCacheStats::evictions`] dropped whole cached
    /// contexts).
    pub partial_evictions: u64,
    /// Total prompt tokens served from cached blocks instead of being
    /// re-prefilled.
    pub reused_tokens: u64,
    /// Evicted nodes whose full-path KV was appended to the disk cold tier
    /// instead of being dropped outright.
    pub demotions: u64,
    /// Cold-tier records promoted back into the RAM trie after a lookup
    /// missed RAM but matched the cold index.
    pub repromotions: u64,
    /// FP32 bytes of KV rows currently reachable through the cold-tier
    /// index (on disk, not charged to the scheduler's KV budget).
    pub cold_resident_bytes: usize,
}

/// A successful [`PrefixCache::lookup`]: the assembled KV of the longest
/// cached prefix plus a lease pinning the matched trie path.
///
/// Holding the hit (or a clone of it) pins every node whose token run lies
/// inside the matched prefix, which steers LRU eviction away from prefixes
/// that in-flight requests are using. The lease is by *token path*, not by
/// node identity, so it survives later node splits: if another branch
/// splits a pinned node, both halves of the split stay pinned. The pins
/// are advisory — prefix rows are copied into each request's own cache
/// during prefill, so evicting a pinned node never breaks a request.
#[derive(Debug, Clone)]
pub struct PrefixHit {
    kv: SharedPrefixKv,
    tokens: usize,
    /// The matched token prefix, held as the eviction lease: the cache
    /// tracks it through a [`Weak`] and treats every node on its path as
    /// pinned while any clone of this [`Arc`] is alive.
    lease: Arc<Vec<u32>>,
}

impl PrefixHit {
    /// The contiguous KV rows of the matched prefix, assembled root-ward
    /// across the trie path (bit-identical to the rows a cold prefill of
    /// the same tokens would produce). Covers at least
    /// [`PrefixHit::tokens`] rows.
    pub fn kv(&self) -> &SharedPrefixKv {
        &self.kv
    }

    /// Number of leading context tokens the cache can serve.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// A KV-free handle carrying only this hit's eviction lease. A caller
    /// that has finished reading [`PrefixHit::kv`] (the rows are copied
    /// into the request's own cache during prefill) should downgrade to
    /// the lease and drop the hit, keeping the path pinned without also
    /// keeping the assembled prefix rows alive.
    pub fn lease(&self) -> PrefixLease {
        PrefixLease {
            _lease: self.lease.clone(),
        }
    }
}

/// The pin of one [`PrefixHit`] without its KV: holding it (or a clone)
/// keeps every trie node along the hit's matched token path pinned against
/// LRU eviction, and nothing else alive. Dropped when the owning request
/// completes, is cancelled, or the engine needs the memory — the pin is
/// advisory, so releasing it is always safe.
#[derive(Debug, Clone)]
pub struct PrefixLease {
    /// Held only for its [`Arc`] refcount — the cache's [`Weak`] sees the
    /// path as pinned while any clone is alive.
    _lease: Arc<Vec<u32>>,
}

/// One node of the token trie: a path-compressed run of tokens plus the
/// refcounted KV rows of exactly that run (absolute positions
/// `depth..depth + run.len()`).
#[derive(Debug)]
struct TrieNode {
    run: Vec<u32>,
    kv: SharedPrefixKv,
    /// Arena index of the parent node; `None` for children of the
    /// (implicit) root.
    parent: Option<usize>,
    /// Children keyed by the first token of their run.
    children: BTreeMap<u32, usize>,
    last_used: u64,
}

/// Where a trie walk stopped.
struct Walk {
    /// Arena indices of the fully matched nodes, root-ward first.
    path: Vec<usize>,
    /// A node whose run matched only its first `usize` tokens, if the walk
    /// ended mid-run.
    partial: Option<(usize, usize)>,
    /// Total number of matched leading tokens.
    matched: usize,
}

/// Length of the common prefix of two token sequences.
pub(crate) fn common_prefix_len(a: &[u32], b: &[u32]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// One record of the disk cold tier: the full token path of a demoted
/// branch and where its framed snapshot bytes live in the spill file.
#[derive(Debug)]
struct ColdEntry {
    /// Full context token path the record's KV covers.
    tokens: Vec<u32>,
    /// Byte offset of the record's frame in the spill file.
    offset: u64,
    /// Length of the snapshot payload inside the frame.
    len: u64,
    /// FP32 bytes of the record's KV rows.
    kv_bytes: usize,
}

/// The disk cold tier: an append-only spill file of demoted branches plus
/// the in-RAM index over it. Each record is a framed single-node
/// [`TrieSnapshot`] (`[payload_len: u64 LE][payload]`) holding the *full*
/// token path of the evicted leaf and its assembled KV, so a record is
/// self-contained — repromotion never depends on which ancestors happen to
/// still be resident.
#[derive(Debug)]
struct ColdTier {
    path: PathBuf,
    /// Config fingerprint stamped into every record; a record that comes
    /// back with a different one (torn write, foreign file) is dropped.
    fingerprint: u64,
    index: Vec<ColdEntry>,
}

impl ColdTier {
    fn append(&mut self, tokens: Vec<u32>, kv: SharedPrefixKv) -> std::io::Result<()> {
        let kv_bytes = kv.storage_bytes();
        let snapshot = TrieSnapshot {
            fingerprint: self.fingerprint,
            layers: kv.layers(),
            kv_heads: kv.kv_heads(),
            vocab: Vec::new(),
            nodes: vec![SnapshotNode {
                parent: None,
                run: tokens.clone(),
                kv,
            }],
        };
        let payload = write_snapshot(&snapshot);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let offset = file.seek(SeekFrom::End(0))?;
        file.write_all(&(payload.len() as u64).to_le_bytes())?;
        file.write_all(&payload)?;
        self.index.push(ColdEntry {
            tokens,
            offset,
            len: payload.len() as u64,
            kv_bytes,
        });
        Ok(())
    }

    /// Reads and validates the record behind `entry`, returning its KV.
    fn read(&self, entry: &ColdEntry) -> Option<SharedPrefixKv> {
        let mut file = std::fs::File::open(&self.path).ok()?;
        file.seek(SeekFrom::Start(entry.offset)).ok()?;
        let mut len_buf = [0u8; 8];
        file.read_exact(&mut len_buf).ok()?;
        if u64::from_le_bytes(len_buf) != entry.len {
            return None;
        }
        let mut payload = vec![0u8; entry.len as usize];
        file.read_exact(&mut payload).ok()?;
        let snapshot = read_snapshot(&payload).ok()?;
        snapshot.expect_fingerprint(self.fingerprint).ok()?;
        let [node] = <[SnapshotNode; 1]>::try_from(snapshot.nodes).ok()?;
        if node.run != entry.tokens {
            return None;
        }
        Some(node.kv)
    }

    fn resident_bytes(&self) -> usize {
        self.index.iter().map(|e| e.kv_bytes).sum()
    }
}

/// A path-compressed token trie from context token sequences to shared
/// prefill KV blocks, with per-node byte accounting and leaf-first partial
/// eviction.
///
/// # Example
///
/// Two contexts sharing an 8-token preamble store it once; the divergence
/// splits the first entry's node, and evicting one branch leaves the other
/// — and the shared preamble — resident:
///
/// ```
/// use cocktail_core::{PrefixCache, PrefixCacheConfig};
/// use cocktail_kvcache::{PrefixKvBlock, SharedPrefixKv};
/// use cocktail_tensor::rng::gaussian_matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let kv = |tokens: usize, seed: u64| {
///     SharedPrefixKv::from_blocks(
///         1,
///         1,
///         vec![PrefixKvBlock::new(
///             gaussian_matrix(tokens, 4, 1.0, seed),
///             gaussian_matrix(tokens, 4, 1.0, seed + 500),
///         )
///         .unwrap()],
///     )
///     .unwrap()
/// };
/// let mut cache = PrefixCache::new(PrefixCacheConfig::default().with_min_prefix_tokens(4));
///
/// // Branch A: preamble 0..8 ++ tail 100..104.
/// let a: Vec<u32> = (0..8).chain(100..104).collect();
/// cache.insert(a.clone(), kv(12, 1));
/// // Branch B shares the preamble then diverges: the node splits and the
/// // preamble's 8 rows stay stored exactly once.
/// let b: Vec<u32> = (0..8).chain(200..204).collect();
/// cache.insert(b.clone(), kv(12, 2));
/// let stats = cache.stats();
/// assert_eq!(stats.nodes, 3); // preamble + two branch tails
/// assert_eq!(stats.node_splits, 1);
///
/// // A lookup walks the trie for the longest cached prefix.
/// let query: Vec<u32> = (0..8).chain([100, 101, 999]).collect();
/// let hit = cache.lookup(&query).expect("prefix hit");
/// assert_eq!(hit.tokens(), 10);
/// assert_eq!(hit.kv().tokens(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PrefixCache {
    config: PrefixCacheConfig,
    /// Node arena; evicted slots are `None` and recycled via `free`.
    nodes: Vec<Option<TrieNode>>,
    free: Vec<usize>,
    /// Children of the implicit root, keyed by first token.
    root_children: BTreeMap<u32, usize>,
    /// Eviction leases of outstanding [`PrefixHit`]s; dead weaks are
    /// pruned on mutation.
    leases: Vec<Weak<Vec<u32>>>,
    /// Disk cold tier; `None` keeps eviction drop-only (the default).
    cold: Option<ColdTier>,
    clock: u64,
    stats: PrefixCacheStats,
}

impl PrefixCache {
    /// Creates an empty cache.
    pub fn new(config: PrefixCacheConfig) -> Self {
        Self {
            config,
            nodes: Vec::new(),
            free: Vec::new(),
            root_children: BTreeMap::new(),
            leases: Vec::new(),
            cold: None,
            clock: 0,
            stats: PrefixCacheStats::default(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &PrefixCacheConfig {
        &self.config
    }

    /// Number of resident trie nodes.
    pub fn len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Whether the trie holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn node(&self, idx: usize) -> &TrieNode {
        self.nodes[idx].as_ref().expect("live trie node")
    }

    fn node_mut(&mut self, idx: usize) -> &mut TrieNode {
        self.nodes[idx].as_mut().expect("live trie node")
    }

    fn alloc(&mut self, node: TrieNode) -> usize {
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx] = Some(node);
                idx
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        }
    }

    fn live_nodes(&self) -> impl Iterator<Item = (usize, &TrieNode)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i, n)))
    }

    /// Bytes of all resident node blocks — the amount a KV budget should
    /// be charged for the cache. Each node's segment is one allocation, so
    /// this sums per node and branches never double-charge their shared
    /// ancestors.
    pub fn total_bytes(&self) -> usize {
        self.live_nodes().map(|(_, n)| n.kv.storage_bytes()).sum()
    }

    /// Arena indices of every node pinned by an outstanding
    /// [`PrefixHit`] lease: the nodes a walk over each live lease's token
    /// path visits (including a partially covered one).
    fn pinned_set(&self) -> BTreeSet<usize> {
        let mut pinned = BTreeSet::new();
        for lease in &self.leases {
            let Some(tokens) = lease.upgrade() else {
                continue;
            };
            let walk = self.walk(&tokens);
            pinned.extend(walk.path);
            if let Some((idx, _)) = walk.partial {
                pinned.insert(idx);
            }
        }
        pinned
    }

    /// Number of resident nodes an in-flight request still pins through a
    /// live [`PrefixHit`].
    pub fn pinned_entries(&self) -> usize {
        self.pinned_set().len()
    }

    /// Number of resident leaf nodes (distinct cached context branches).
    pub fn leaves(&self) -> usize {
        self.live_nodes()
            .filter(|(_, n)| n.children.is_empty())
            .count()
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> PrefixCacheStats {
        PrefixCacheStats {
            entries: self.leaves(),
            nodes: self.len(),
            pinned_entries: self.pinned_entries(),
            resident_bytes: self.total_bytes(),
            cold_resident_bytes: self.cold.as_ref().map_or(0, ColdTier::resident_bytes),
            ..self.stats
        }
    }

    /// Enables the disk cold tier: from now on, evicting a leaf appends its
    /// full-path KV to the spill file at `path` instead of dropping it, and
    /// [`PrefixCache::repromote`] can bring those branches back. The file
    /// is truncated — cold records are scoped to this cache instance (a
    /// restart re-warms through [`PrefixCache::restore_from`], not through
    /// a stale spill file). `fingerprint` is stamped into every record and
    /// re-checked on read.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the spill file cannot be created.
    pub fn enable_cold_tier(
        &mut self,
        path: impl Into<PathBuf>,
        fingerprint: u64,
    ) -> Result<(), SnapshotError> {
        let path = path.into();
        std::fs::File::create(&path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        self.cold = Some(ColdTier {
            path,
            fingerprint,
            index: Vec::new(),
        });
        Ok(())
    }

    /// Whether the disk cold tier is enabled.
    pub fn cold_tier_enabled(&self) -> bool {
        self.cold.is_some()
    }

    /// Walks the trie along `tokens`, without touching LRU stamps or
    /// counters.
    fn walk(&self, tokens: &[u32]) -> Walk {
        let mut path = Vec::new();
        let mut matched = 0usize;
        let mut children = &self.root_children;
        while matched < tokens.len() {
            let Some(&idx) = children.get(&tokens[matched]) else {
                break;
            };
            let node = self.node(idx);
            let lcp = common_prefix_len(&node.run, &tokens[matched..]);
            matched += lcp;
            if lcp == node.run.len() {
                path.push(idx);
                children = &node.children;
            } else {
                return Walk {
                    path,
                    partial: Some((idx, lcp)),
                    matched,
                };
            }
        }
        Walk {
            path,
            partial: None,
            matched,
        }
    }

    /// Whether the trie already stores all of `tokens` (so inserting them
    /// would add nothing).
    pub fn covers(&self, tokens: &[u32]) -> bool {
        !tokens.is_empty() && self.walk(tokens).matched == tokens.len()
    }

    /// The longest cached prefix of `tokens`, without touching LRU stamps
    /// or hit/miss counters — a probe for planning (e.g. deciding which
    /// admission pass a request belongs to) ahead of the real
    /// [`PrefixCache::lookup`].
    pub fn peek_prefix_len(&self, tokens: &[u32]) -> usize {
        self.walk(tokens).matched
    }

    /// Bumps the LRU stamp of every node a walk matched (including a
    /// partially matched one).
    fn touch(&mut self, walk: &Walk) {
        self.clock += 1;
        let clock = self.clock;
        for &idx in &walk.path {
            self.node_mut(idx).last_used = clock;
        }
        if let Some((idx, _)) = walk.partial {
            self.node_mut(idx).last_used = clock;
        }
    }

    /// Walks the trie for the longest cached prefix of `tokens` (at least
    /// the configured minimum), bumps the LRU stamp of every node on the
    /// path, and returns a [`PrefixHit`]: the assembled contiguous KV of
    /// the match plus pins on the path nodes.
    ///
    /// A hit matching a single node is a refcount bump; a hit spanning
    /// several nodes (or ending mid-run) assembles its rows into one fresh
    /// block — still orders of magnitude cheaper than re-running the
    /// quadratic prefill attention the hit replaces.
    ///
    /// # Example
    ///
    /// ```
    /// use cocktail_core::{PrefixCache, PrefixCacheConfig};
    /// use cocktail_kvcache::{PrefixKvBlock, SharedPrefixKv};
    /// use cocktail_tensor::rng::gaussian_matrix;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let kv = SharedPrefixKv::from_blocks(
    ///     1,
    ///     1,
    ///     vec![PrefixKvBlock::new(
    ///         gaussian_matrix(12, 4, 1.0, 1),
    ///         gaussian_matrix(12, 4, 1.0, 2),
    ///     )?],
    /// )?;
    /// let mut cache = PrefixCache::new(PrefixCacheConfig::default());
    /// let tokens: Vec<u32> = (0..12).collect();
    /// cache.insert(tokens.clone(), kv);
    /// // A request sharing the first 10 tokens reuses them from the cache;
    /// // holding the hit pins the matched path against eviction.
    /// let request: Vec<u32> = tokens[..10].iter().copied().chain([99, 98]).collect();
    /// let hit = cache.lookup(&request).expect("prefix hit");
    /// assert_eq!(hit.tokens(), 10);
    /// assert_eq!(cache.stats().pinned_entries, 1);
    /// drop(hit);
    /// assert_eq!(cache.stats().pinned_entries, 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn lookup(&mut self, tokens: &[u32]) -> Option<PrefixHit> {
        let walk = self.walk(tokens);
        if walk.matched < self.config.min_prefix_tokens {
            self.stats.misses += 1;
            return None;
        }
        self.touch(&walk);
        self.stats.hits += 1;
        self.stats.reused_tokens += walk.matched as u64;

        let mut parts: Vec<SharedPrefixKv> = Vec::with_capacity(walk.path.len() + 1);
        for &idx in &walk.path {
            parts.push(self.node(idx).kv.clone());
        }
        if let Some((idx, lcp)) = walk.partial {
            parts.push(
                self.node(idx)
                    .kv
                    .slice_tokens(0, lcp)
                    .expect("partial match is in range"),
            );
        }
        let refs: Vec<&SharedPrefixKv> = parts.iter().collect();
        let kv = SharedPrefixKv::concat(&refs).expect("path segments share one layout");
        let lease = Arc::new(tokens[..walk.matched].to_vec());
        self.leases.retain(|l| l.strong_count() > 0);
        self.leases.push(Arc::downgrade(&lease));
        Some(PrefixHit {
            kv,
            tokens: walk.matched,
            lease,
        })
    }

    /// Splits the node at `idx` after `offset` run tokens: the node keeps
    /// the root-ward half (so its parent's child pointer stays valid) and a
    /// new node takes the leaf-ward half together with the original
    /// children.
    fn split_node(&mut self, idx: usize, offset: usize) {
        let mut node = self.nodes[idx].take().expect("live trie node");
        let child_run = node.run.split_off(offset);
        let total = node.kv.tokens();
        let parent_kv = node
            .kv
            .slice_tokens(0, offset)
            .expect("split offset is inside the run");
        let child_kv = node
            .kv
            .slice_tokens(offset, total)
            .expect("split offset is inside the run");
        let child = TrieNode {
            run: child_run,
            kv: child_kv,
            parent: Some(idx),
            children: std::mem::take(&mut node.children),
            last_used: node.last_used,
        };
        node.kv = parent_kv;
        self.nodes[idx] = Some(node);
        let child_first = child.run[0];
        let grandchildren: Vec<usize> = child.children.values().copied().collect();
        let child_idx = self.alloc(child);
        for g in grandchildren {
            self.node_mut(g).parent = Some(child_idx);
        }
        self.node_mut(idx).children.insert(child_first, child_idx);
        self.stats.node_splits += 1;
    }

    /// Inserts the blocks of one context token sequence.
    ///
    /// `kv` must cover exactly `tokens` (one row per token). The walk-over
    /// part of the sequence is shared with the existing trie: if the trie
    /// already covers all of `tokens` the insert is a no-op beyond touching
    /// the matched path's LRU stamps; if the sequence diverges mid-node,
    /// the node is split at the divergence point so both branches share the
    /// common ancestor exactly once; only the uncovered suffix rows are
    /// stored, as a new leaf. Beyond the
    /// [`PrefixCacheConfig::max_entries`] node cap, least-recently-used
    /// unpinned leaves are evicted.
    ///
    /// The trie serves one model: blocks whose layer/head layout disagrees
    /// with the resident nodes are not cached (the insert is ignored), so
    /// a later multi-node [`PrefixCache::lookup`] can always assemble its
    /// path segments.
    pub fn insert(&mut self, tokens: Vec<u32>, kv: SharedPrefixKv) {
        if tokens.is_empty() {
            return;
        }
        debug_assert_eq!(
            kv.tokens(),
            tokens.len(),
            "inserted blocks must cover exactly the inserted tokens"
        );
        if let Some((_, node)) = self.live_nodes().next() {
            if node.kv.layers() != kv.layers() || node.kv.kv_heads() != kv.kv_heads() {
                return;
            }
        }
        let walk = self.walk(&tokens);
        if walk.matched == tokens.len() {
            self.touch(&walk);
            return;
        }

        // Split before touching: the split-off tail belongs to the *other*
        // branch and must keep its old LRU stamp — only the shared parent
        // half (and the fully matched path) is being reused by this insert.
        let attach_parent = match walk.partial {
            Some((idx, offset)) => {
                self.split_node(idx, offset);
                Some(idx)
            }
            None => walk.path.last().copied(),
        };
        self.touch(&walk);
        let suffix_kv = if walk.matched == 0 {
            kv
        } else {
            kv.slice_tokens(walk.matched, tokens.len())
                .expect("uncovered suffix is non-empty")
        };
        let run = tokens[walk.matched..].to_vec();
        let first = run[0];
        let leaf = TrieNode {
            run,
            kv: suffix_kv,
            parent: attach_parent,
            children: BTreeMap::new(),
            last_used: self.clock,
        };
        let leaf_idx = self.alloc(leaf);
        match attach_parent {
            Some(p) => self.node_mut(p).children.insert(first, leaf_idx),
            None => self.root_children.insert(first, leaf_idx),
        };
        self.stats.insertions += 1;

        while self.len() > self.config.max_entries {
            if self.evict_lru_unpinned().is_none() {
                break; // everything left is pinned or interior; allow overflow
            }
        }
    }

    /// Evicts the least-recently-used unpinned **leaf** node, returning the
    /// bytes freed. Interior nodes are never candidates, so an eviction
    /// can only trim a branch leaf-ward — every surviving node's ancestors
    /// survive with it, and the shortened prefix keeps serving lookups.
    /// Returns `None` when every leaf is pinned (or the trie is empty).
    pub fn evict_lru_unpinned(&mut self) -> Option<usize> {
        self.leases.retain(|l| l.strong_count() > 0);
        let pinned = self.pinned_set();
        let idx = self
            .live_nodes()
            .filter(|(i, n)| n.children.is_empty() && !pinned.contains(i))
            .min_by_key(|(_, n)| n.last_used)
            .map(|(i, _)| i)?;
        self.demote(idx);
        let node = self.nodes[idx].take().expect("live trie node");
        self.free.push(idx);
        match node.parent {
            Some(p) => {
                self.node_mut(p).children.remove(&node.run[0]);
                self.stats.partial_evictions += 1;
            }
            None => {
                self.root_children.remove(&node.run[0]);
            }
        }
        self.stats.evictions += 1;
        Some(node.kv.storage_bytes())
    }

    /// Appends the full-path KV of the about-to-be-evicted leaf at `idx` to
    /// the cold tier (if enabled). The record stores the branch root-to-leaf
    /// — ancestors are still resident at demote time, so the assembled rows
    /// are exactly what a lookup of the full path would have returned — and
    /// is skipped when an existing record already covers the path. I/O
    /// failures drop the record silently: demotion is an optimization, the
    /// eviction itself must never fail.
    fn demote(&mut self, idx: usize) {
        if self.cold.is_none() {
            return;
        }
        let mut chain = vec![idx];
        let mut cur = self.node(idx).parent;
        while let Some(p) = cur {
            chain.push(p);
            cur = self.node(p).parent;
        }
        chain.reverse();
        let tokens: Vec<u32> = chain
            .iter()
            .flat_map(|&i| self.node(i).run.iter().copied())
            .collect();
        let tier = self.cold.as_mut().expect("checked above");
        if tier
            .index
            .iter()
            .any(|e| e.tokens.len() >= tokens.len() && e.tokens.starts_with(&tokens))
        {
            return;
        }
        let parts: Vec<&SharedPrefixKv> = chain.iter().map(|&i| &self.node(i).kv).collect();
        let Ok(kv) = SharedPrefixKv::concat(&parts) else {
            return;
        };
        let tier = self.cold.as_mut().expect("checked above");
        if tier.append(tokens, kv).is_ok() {
            self.stats.demotions += 1;
        }
    }

    /// The best cold-tier match for `tokens`: the number of leading tokens
    /// a repromotion could serve and an estimate of the RAM bytes it would
    /// add. Returns `None` below the configured reuse threshold, with the
    /// tier disabled, or when the index has no overlapping record. Like
    /// [`PrefixCache::peek_prefix_len`] this is a planning probe: it does
    /// no I/O and changes nothing.
    pub fn cold_match(&self, tokens: &[u32]) -> Option<(usize, usize)> {
        let tier = self.cold.as_ref()?;
        tier.index
            .iter()
            .map(|e| (common_prefix_len(&e.tokens, tokens), e))
            .filter(|(m, _)| *m >= self.config.min_prefix_tokens)
            .max_by_key(|(m, _)| *m)
            .map(|(m, e)| (m, e.kv_bytes * m / e.tokens.len().max(1)))
    }

    /// Promotes the best cold-tier match for `tokens` back into the RAM
    /// trie, returning the bytes added. The record is read back from the
    /// spill file, validated (frame, checksum, fingerprint, token path —
    /// a torn or corrupted record is dropped from the index and reported as
    /// `None`, never a panic), sliced to the matched prefix, and inserted
    /// through the normal insert path (so splits, LRU bookkeeping and the
    /// node cap apply). The caller is responsible for budget admission —
    /// probe with [`PrefixCache::cold_match`] first.
    pub fn repromote(&mut self, tokens: &[u32]) -> Option<usize> {
        let tier = self.cold.as_ref()?;
        let (pos, matched) = tier
            .index
            .iter()
            .enumerate()
            .map(|(i, e)| (i, common_prefix_len(&e.tokens, tokens)))
            .filter(|(_, m)| *m >= self.config.min_prefix_tokens)
            .max_by_key(|(_, m)| *m)?;
        let entry = &tier.index[pos];
        let full_len = entry.tokens.len();
        let prefix = entry.tokens[..matched].to_vec();
        let Some(kv) = tier.read(entry).and_then(|kv| {
            if matched == full_len {
                Some(kv)
            } else {
                kv.slice_tokens(0, matched).ok()
            }
        }) else {
            // Unreadable record: drop it so the next lookup does not retry.
            self.cold.as_mut().expect("checked above").index.remove(pos);
            return None;
        };
        let before = self.total_bytes();
        self.insert(prefix, kv);
        self.stats.repromotions += 1;
        Some(self.total_bytes().saturating_sub(before))
    }

    /// Exports the resident trie as a [`TrieSnapshot`] (parents-first node
    /// order), stamping in the caller's config fingerprint and tokenizer
    /// vocabulary. Pair with [`cocktail_kvcache::write_snapshot`] to
    /// produce the flat on-disk bytes.
    pub fn to_snapshot(&self, fingerprint: u64, vocab: Vec<String>) -> TrieSnapshot {
        let (layers, kv_heads) = self
            .live_nodes()
            .next()
            .map_or((1, 1), |(_, n)| (n.kv.layers(), n.kv.kv_heads()));
        let mut nodes = Vec::with_capacity(self.len());
        let mut export_idx: BTreeMap<usize, usize> = BTreeMap::new();
        let mut stack: Vec<usize> = self.root_children.values().copied().collect();
        while let Some(idx) = stack.pop() {
            let node = self.node(idx);
            let parent = node.parent.map(|p| export_idx[&p]);
            export_idx.insert(idx, nodes.len());
            nodes.push(SnapshotNode {
                parent,
                run: node.run.clone(),
                kv: node.kv.clone(),
            });
            stack.extend(node.children.values().copied());
        }
        TrieSnapshot {
            fingerprint,
            layers,
            kv_heads,
            vocab,
            nodes,
        }
    }

    /// Replaces the resident trie with the contents of a snapshot. The
    /// existing nodes, leases and cumulative counters are discarded (a
    /// restore models a process restart); the configuration and cold tier
    /// are kept. On any validation error the cache is left untouched.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] if the snapshot's nodes are not
    /// parents-first, have empty or duplicate-keyed runs, or disagree with
    /// the snapshot's own KV layout.
    pub fn load_snapshot(&mut self, snapshot: TrieSnapshot) -> Result<(), SnapshotError> {
        let mut nodes: Vec<Option<TrieNode>> = Vec::with_capacity(snapshot.nodes.len());
        let mut root_children: BTreeMap<u32, usize> = BTreeMap::new();
        for (i, sn) in snapshot.nodes.into_iter().enumerate() {
            if sn.run.is_empty() {
                return Err(SnapshotError::Malformed(format!("node {i} has empty run")));
            }
            if sn.kv.tokens() != sn.run.len() {
                return Err(SnapshotError::Malformed(format!(
                    "node {i} kv covers {} tokens for a {}-token run",
                    sn.kv.tokens(),
                    sn.run.len()
                )));
            }
            if sn.kv.layers() != snapshot.layers || sn.kv.kv_heads() != snapshot.kv_heads {
                return Err(SnapshotError::Malformed(format!(
                    "node {i} disagrees with the snapshot KV layout"
                )));
            }
            let first = sn.run[0];
            match sn.parent {
                None => {
                    if root_children.insert(first, i).is_some() {
                        return Err(SnapshotError::Malformed(format!(
                            "duplicate root child key {first}"
                        )));
                    }
                }
                Some(p) => {
                    if p >= i {
                        return Err(SnapshotError::Malformed(format!(
                            "node {i} parent {p} is not an earlier node"
                        )));
                    }
                    let parent = nodes[p].as_mut().expect("parents-first order");
                    if parent.children.insert(first, i).is_some() {
                        return Err(SnapshotError::Malformed(format!(
                            "node {p} has duplicate child key {first}"
                        )));
                    }
                }
            }
            nodes.push(Some(TrieNode {
                run: sn.run,
                kv: sn.kv,
                parent: sn.parent,
                children: BTreeMap::new(),
                last_used: 0,
            }));
        }
        self.nodes = nodes;
        self.free = Vec::new();
        self.root_children = root_children;
        self.leases = Vec::new();
        self.clock = 0;
        self.stats = PrefixCacheStats::default();
        Ok(())
    }

    /// Restores the trie from a snapshot file written by the serving
    /// layer, returning the number of nodes restored. The snapshot must
    /// carry exactly `fingerprint` — a mismatch (different model config or
    /// weight seed) is an error and leaves the cache untouched, so a
    /// restarted engine degrades to a clean cold start instead of serving
    /// another model's KV rows.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be read, any decode error
    /// from [`cocktail_kvcache::read_snapshot`], or
    /// [`SnapshotError::FingerprintMismatch`].
    pub fn restore_from(&mut self, path: &Path, fingerprint: u64) -> Result<usize, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let snapshot = read_snapshot(&bytes)?;
        snapshot.expect_fingerprint(fingerprint)?;
        let nodes = snapshot.nodes.len();
        self.load_snapshot(snapshot)?;
        Ok(nodes)
    }

    /// Structural invariants of the trie, checked by tests (and cheap
    /// enough for debug assertions): parent/child pointers agree, every
    /// node's run is non-empty and keyed by its first token, each node's
    /// blocks cover exactly its run, and no interior node lost all its
    /// children without being removed.
    #[cfg(test)]
    fn assert_consistent(&self) {
        let mut reachable = 0usize;
        let mut stack: Vec<(Option<usize>, usize)> =
            self.root_children.iter().map(|(_, &i)| (None, i)).collect();
        while let Some((parent, idx)) = stack.pop() {
            let node = self.node(idx);
            reachable += 1;
            assert_eq!(node.parent, parent, "parent pointer mismatch at {idx}");
            assert!(!node.run.is_empty(), "empty run at {idx}");
            assert_eq!(
                node.kv.tokens(),
                node.run.len(),
                "blocks must cover exactly the node's run"
            );
            for (&first, &child) in &node.children {
                assert_eq!(
                    self.node(child).run[0],
                    first,
                    "child key must be the child's first run token"
                );
                stack.push((Some(idx), child));
            }
        }
        assert_eq!(reachable, self.len(), "unreachable live nodes");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_kvcache::PrefixKvBlock;
    use cocktail_tensor::rng::gaussian_matrix;
    use proptest::prelude::*;

    fn kv(tokens: usize, seed: u64) -> SharedPrefixKv {
        SharedPrefixKv::from_blocks(
            1,
            1,
            vec![PrefixKvBlock::new(
                gaussian_matrix(tokens, 4, 1.0, seed),
                gaussian_matrix(tokens, 4, 1.0, seed + 500),
            )
            .unwrap()],
        )
        .unwrap()
    }

    /// Blocks whose rows deterministically encode their absolute position,
    /// so reassembled prefixes can be checked row-for-row.
    fn positional_kv(tokens: usize) -> SharedPrefixKv {
        let data: Vec<f32> = (0..tokens * 4).map(|i| i as f32).collect();
        let k = cocktail_tensor::Matrix::from_vec(tokens, 4, data.clone()).unwrap();
        let v = cocktail_tensor::Matrix::from_vec(tokens, 4, data.iter().map(|x| -x).collect())
            .unwrap();
        SharedPrefixKv::from_blocks(1, 1, vec![PrefixKvBlock::new(k, v).unwrap()]).unwrap()
    }

    fn seq(start: u32, len: usize) -> Vec<u32> {
        (start..start + len as u32).collect()
    }

    fn branch(preamble: usize, tail_start: u32, tail: usize) -> Vec<u32> {
        let mut t = seq(0, preamble);
        t.extend(seq(tail_start, tail));
        t
    }

    fn small_cache() -> PrefixCache {
        PrefixCache::new(PrefixCacheConfig::default().with_min_prefix_tokens(4))
    }

    #[test]
    fn lookup_returns_longest_cached_prefix() {
        let mut cache = small_cache();
        cache.insert(seq(0, 10), kv(10, 1));
        cache.insert(branch(6, 100, 6), kv(12, 2));
        cache.assert_consistent();

        let mut query = seq(0, 8);
        query.push(999);
        let hit = cache.lookup(&query).unwrap();
        assert_eq!(
            hit.tokens(),
            8,
            "the 10-token branch shares 8 leading tokens"
        );
        assert_eq!(hit.kv().tokens(), 8);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.reused_tokens, 8);
    }

    #[test]
    fn short_matches_are_misses() {
        let mut cache = small_cache();
        cache.insert(seq(0, 10), kv(10, 1));
        let mut query = seq(0, 3); // below min_prefix_tokens = 4
        query.extend(seq(50, 8));
        assert!(cache.lookup(&query).is_none());
        assert!(cache.lookup(&seq(200, 10)).is_none());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn divergent_branches_store_their_common_prefix_once() {
        let mut cache = small_cache();
        cache.insert(branch(8, 100, 4), kv(12, 1));
        let one_branch_bytes = cache.total_bytes();
        cache.insert(branch(8, 200, 4), kv(12, 2));
        cache.assert_consistent();
        let stats = cache.stats();
        assert_eq!(stats.nodes, 3, "preamble node + two branch leaves");
        assert_eq!(stats.entries, 2, "two cached branches");
        assert_eq!(stats.node_splits, 1);
        // The whole-sequence map would hold 2 x 12 tokens; the trie holds
        // 8 + 4 + 4 = 16 — strictly fewer bytes than 24 rows.
        let per_token = one_branch_bytes / 12;
        assert_eq!(cache.total_bytes(), 16 * per_token);
        // Both branches resolve fully.
        assert_eq!(cache.lookup(&branch(8, 100, 4)).unwrap().tokens(), 12);
        assert_eq!(cache.lookup(&branch(8, 200, 4)).unwrap().tokens(), 12);
    }

    #[test]
    fn multi_node_hits_assemble_contiguous_rows() {
        let mut cache = small_cache();
        // Insert the full 12-token run with position-encoded rows, then
        // split it by inserting a divergent branch.
        let full: Vec<u32> = seq(0, 12);
        cache.insert(full.clone(), positional_kv(12));
        cache.insert(branch(5, 300, 3), positional_kv(8));
        cache.assert_consistent();
        // A full-path hit spans preamble node + original tail node.
        let hit = cache.lookup(&full).unwrap();
        assert_eq!(hit.tokens(), 12);
        let reference = positional_kv(12);
        assert_eq!(
            hit.kv().block(0, 0).k(),
            reference.block(0, 0).k(),
            "assembled rows must equal the original contiguous rows"
        );
        assert_eq!(hit.kv().block(0, 0).v(), reference.block(0, 0).v());
    }

    #[test]
    fn insert_covered_sequences_is_a_noop_and_covers_reports_prefixes() {
        let mut cache = small_cache();
        cache.insert(seq(0, 6), kv(6, 1));
        assert!(cache.covers(&seq(0, 6)));
        assert!(cache.covers(&seq(0, 4)), "mid-run coverage counts");
        assert!(!cache.covers(&[]));
        // Extending a cached run adds only the suffix node.
        cache.insert(seq(0, 12), kv(12, 2));
        assert_eq!(cache.len(), 2);
        assert!(cache.covers(&seq(0, 12)));
        // Inserting something already covered adds nothing.
        cache.insert(seq(0, 9), kv(9, 3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().insertions, 2);
        cache.assert_consistent();
    }

    #[test]
    fn partial_eviction_trims_leaves_first_and_keeps_ancestors() {
        let mut cache = small_cache();
        cache.insert(branch(8, 100, 4), kv(12, 1));
        cache.insert(branch(8, 200, 4), kv(12, 2));
        // Touch branch 200 so branch 100's leaf is the LRU.
        cache.lookup(&branch(8, 200, 4)).unwrap();
        let freed = cache.evict_lru_unpinned().unwrap();
        assert!(freed > 0);
        cache.assert_consistent();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.partial_evictions, 1, "an ancestor stayed resident");
        // The preamble and the surviving branch still serve lookups.
        assert_eq!(cache.lookup(&branch(8, 200, 4)).unwrap().tokens(), 12);
        assert_eq!(
            cache.lookup(&branch(8, 100, 4)).unwrap().tokens(),
            8,
            "the trimmed branch still reuses the shared preamble"
        );
    }

    #[test]
    fn split_off_tails_keep_their_old_lru_stamp() {
        let mut cache = small_cache();
        // A (preamble + X tail) is oldest; H is a hotter unrelated branch;
        // B splits A's node. The split-off X tail belongs to A and must
        // keep A's stale stamp — not inherit B's fresh one — so the next
        // eviction trims X, not H.
        cache.insert(branch(8, 100, 4), kv(12, 1)); // A = P ++ X
        cache.insert(seq(500, 8), kv(8, 2)); // H, more recent than A
        cache.insert(branch(8, 200, 4), kv(12, 3)); // B = P ++ Y, splits A
        cache.evict_lru_unpinned().unwrap();
        cache.assert_consistent();
        assert!(cache.covers(&seq(500, 8)), "the hot branch must survive");
        assert_eq!(
            cache.peek_prefix_len(&branch(8, 100, 4)),
            8,
            "the stale split-off tail is what gets evicted"
        );
    }

    #[test]
    fn lru_eviction_skips_pinned_leaves() {
        let mut cache = PrefixCache::new(
            PrefixCacheConfig::default()
                .with_min_prefix_tokens(4)
                .with_max_entries(2),
        );
        cache.insert(seq(0, 8), kv(8, 1));
        cache.insert(seq(100, 8), kv(8, 2));
        // Pin the older branch by holding a hit on it.
        let pinned = cache.lookup(&seq(0, 8)).unwrap();
        // Now the 100.. leaf is the LRU unpinned one: the third insert
        // evicts it, not the pinned branch.
        cache.insert(seq(200, 8), kv(8, 3));
        assert_eq!(cache.len(), 2);
        assert!(cache.covers(&seq(0, 8)), "pinned branch must survive");
        assert!(!cache.covers(&seq(100, 8)));
        drop(pinned);
        let freed = cache.evict_lru_unpinned().unwrap();
        assert!(freed > 0);
        assert_eq!(cache.len(), 1);
        cache.assert_consistent();
    }

    #[test]
    fn layout_mismatched_inserts_are_ignored() {
        // The trie serves one model; a kv with a different layer/head
        // layout must be rejected at insert time rather than panicking a
        // later multi-node lookup's assembly.
        let mut cache = small_cache();
        cache.insert(seq(0, 8), kv(8, 1)); // 1 layer x 1 head
        let other_layout = SharedPrefixKv::from_blocks(
            2,
            1,
            vec![
                PrefixKvBlock::new(
                    gaussian_matrix(12, 4, 1.0, 9),
                    gaussian_matrix(12, 4, 1.0, 10),
                )
                .unwrap(),
                PrefixKvBlock::new(
                    gaussian_matrix(12, 4, 1.0, 11),
                    gaussian_matrix(12, 4, 1.0, 12),
                )
                .unwrap(),
            ],
        )
        .unwrap();
        cache.insert(seq(0, 12), other_layout);
        assert_eq!(cache.len(), 1, "mismatched layout must not be cached");
        cache.assert_consistent();
        // The original branch still serves lookups across its full run.
        assert_eq!(cache.lookup(&seq(0, 12)).unwrap().tokens(), 8);
    }

    #[test]
    fn total_bytes_tracks_nodes() {
        let mut cache = small_cache();
        assert_eq!(cache.total_bytes(), 0);
        assert!(cache.is_empty());
        cache.insert(seq(0, 8), kv(8, 1));
        let one = cache.total_bytes();
        assert_eq!(one, 2 * 8 * 4 * 4); // k+v, 8 tokens, dim 4, f32
        cache.insert(seq(100, 8), kv(8, 2));
        assert_eq!(cache.total_bytes(), 2 * one);
        cache.evict_lru_unpinned().unwrap();
        assert_eq!(cache.total_bytes(), one);
        assert_eq!(cache.stats().resident_bytes, one);
    }

    /// A unique spill-file path per test (and per proptest case), so
    /// parallel tests never share cold tiers.
    fn spill_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("cocktail_spill_{}_{tag}_{n}", std::process::id()))
    }

    #[test]
    fn eviction_demotes_to_the_cold_tier_and_repromotes_bit_identically() {
        let mut cache = small_cache();
        cache.enable_cold_tier(spill_path("roundtrip"), 42).unwrap();
        assert!(cache.cold_tier_enabled());
        cache.insert(seq(0, 12), positional_kv(12));
        // Split the run so the evicted leaf has a resident ancestor: the
        // demoted record must still cover the *full* path.
        cache.insert(branch(5, 300, 3), positional_kv(8));
        // Evict the 12-token branch's tail leaf (LRU).
        let freed = cache.evict_lru_unpinned().unwrap();
        assert!(freed > 0);
        cache.assert_consistent();
        let stats = cache.stats();
        assert_eq!(stats.demotions, 1);
        assert!(stats.cold_resident_bytes > 0);
        assert_eq!(cache.peek_prefix_len(&seq(0, 12)), 5, "RAM lost the tail");

        // The cold index still knows the full 12-token path.
        let (matched, est) = cache.cold_match(&seq(0, 12)).unwrap();
        assert_eq!(matched, 12);
        assert!(est > 0);
        let added = cache.repromote(&seq(0, 12)).unwrap();
        assert!(added > 0);
        cache.assert_consistent();
        assert_eq!(cache.stats().repromotions, 1);

        // The repromoted rows are bit-identical to the original prefill.
        let hit = cache.lookup(&seq(0, 12)).unwrap();
        assert_eq!(hit.tokens(), 12);
        let reference = positional_kv(12);
        assert_eq!(hit.kv().block(0, 0).k(), reference.block(0, 0).k());
        assert_eq!(hit.kv().block(0, 0).v(), reference.block(0, 0).v());
    }

    #[test]
    fn cold_match_respects_the_reuse_threshold_and_partial_overlap() {
        let mut cache = small_cache();
        cache.enable_cold_tier(spill_path("partial"), 7).unwrap();
        cache.insert(seq(0, 10), positional_kv(10));
        cache.evict_lru_unpinned().unwrap();
        // A query sharing only 3 leading tokens is below min_prefix_tokens.
        let mut short = seq(0, 3);
        short.extend(seq(900, 5));
        assert!(cache.cold_match(&short).is_none());
        // A query sharing 6 tokens repromotes just that slice.
        let mut partial = seq(0, 6);
        partial.extend(seq(900, 4));
        assert_eq!(cache.cold_match(&partial).unwrap().0, 6);
        cache.repromote(&partial).unwrap();
        let hit = cache.lookup(&partial).unwrap();
        assert_eq!(hit.tokens(), 6);
        let reference = positional_kv(10);
        assert_eq!(
            hit.kv().block(0, 0).k(),
            &reference.block(0, 0).k().slice_rows(0, 6)
        );
        // Unrelated queries still miss.
        assert!(cache.cold_match(&seq(5000, 10)).is_none());
    }

    #[test]
    fn corrupted_spill_records_are_dropped_without_panic() {
        let mut cache = small_cache();
        let path = spill_path("corrupt");
        cache.enable_cold_tier(path.clone(), 1).unwrap();
        cache.insert(seq(0, 10), kv(10, 1));
        cache.evict_lru_unpinned().unwrap();
        assert_eq!(cache.stats().demotions, 1);
        // Flip one payload byte on disk (past the 8-byte frame length).
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = 8 + (bytes.len() - 8) / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        // The repromotion fails cleanly and the record is forgotten.
        assert!(cache.repromote(&seq(0, 10)).is_none());
        assert_eq!(cache.stats().cold_resident_bytes, 0);
        assert!(cache.cold_match(&seq(0, 10)).is_none());
        assert_eq!(cache.stats().repromotions, 0);
        cache.assert_consistent();
    }

    #[test]
    fn snapshot_export_import_round_trips_the_trie() {
        let mut cache = small_cache();
        cache.insert(seq(0, 12), positional_kv(12));
        cache.insert(branch(5, 300, 3), positional_kv(8));
        cache.insert(branch(5, 400, 4), positional_kv(9));
        cache.assert_consistent();
        let snapshot = cache.to_snapshot(99, vec!["alpha".into(), "beta".into()]);
        assert_eq!(snapshot.nodes.len(), cache.len());
        assert_eq!(snapshot.fingerprint, 99);

        let mut restored = small_cache();
        restored.load_snapshot(snapshot).unwrap();
        restored.assert_consistent();
        assert_eq!(restored.len(), cache.len());
        assert_eq!(restored.total_bytes(), cache.total_bytes());
        // Restored lookups serve the same prefixes with bit-identical rows.
        let hit = restored.lookup(&seq(0, 12)).unwrap();
        assert_eq!(hit.tokens(), 12);
        let reference = positional_kv(12);
        assert_eq!(hit.kv().block(0, 0).k(), reference.block(0, 0).k());
        assert_eq!(restored.lookup(&branch(5, 400, 4)).unwrap().tokens(), 9);
        // Counters start fresh after a restore (modeling a restart)...
        assert_eq!(restored.stats().insertions, 0);
        // ...but occupancy is live.
        assert_eq!(restored.stats().nodes, cache.len());
    }

    #[test]
    fn restore_from_rejects_wrong_fingerprints_and_bad_files() {
        let mut cache = small_cache();
        cache.insert(seq(0, 10), kv(10, 1));
        let path = spill_path("restore");
        let bytes = cocktail_kvcache::write_snapshot(&cache.to_snapshot(1234, Vec::new()));
        std::fs::write(&path, &bytes).unwrap();

        let mut target = small_cache();
        target.insert(seq(700, 6), kv(6, 9));
        // Wrong fingerprint: error, cache untouched.
        assert!(matches!(
            target.restore_from(&path, 4321),
            Err(SnapshotError::FingerprintMismatch { .. })
        ));
        assert!(target.covers(&seq(700, 6)));
        // Right fingerprint: the trie is replaced.
        assert_eq!(target.restore_from(&path, 1234).unwrap(), 1);
        assert!(target.covers(&seq(0, 10)));
        assert!(!target.covers(&seq(700, 6)));
        target.assert_consistent();
        // Missing file: Io error, no panic.
        assert!(matches!(
            target.restore_from(Path::new("/nonexistent/snap"), 1234),
            Err(SnapshotError::Io(_))
        ));
    }

    /// Reference model for the proptest: the whole-sequence (LCP map)
    /// byte accounting the trie must strictly beat whenever branches
    /// share a prefix.
    fn lcp_map_bytes(sequences: &[Vec<u32>], per_token: usize) -> usize {
        let mut kept: Vec<&Vec<u32>> = Vec::new();
        for s in sequences {
            if kept.iter().any(|k| k.len() >= s.len() && k.starts_with(s)) {
                continue;
            }
            kept.retain(|k| !(k.len() < s.len() && s.starts_with(k)));
            kept.push(s);
        }
        kept.iter().map(|s| s.len() * per_token).sum()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Under random branching insert/lookup/evict traffic the trie
        /// stays structurally consistent, each node's refcount reflects
        /// exactly the live hits pinning it, partial eviction never frees
        /// an ancestor of a live node (every covered-yesterday prefix that
        /// is still resident remains reachable from the root), and the
        /// trie never stores more bytes than the whole-sequence LCP map
        /// would.
        #[test]
        fn trie_invariants_under_random_branching_traffic(
            preamble in 4usize..10,
            tail_draws in proptest::collection::vec(0u32..42, 1..10),
            evictions in 0usize..6,
        ) {
            let mut cache = small_cache();
            let mut inserted: Vec<Vec<u32>> = Vec::new();
            let per_token = 2 * 4 * 4; // k+v rows of dim 4 at f32
            let mut hits: Vec<PrefixHit> = Vec::new();
            // Decode each draw into (tail family 0..6, tail length 1..8).
            let tails: Vec<(u32, usize)> = tail_draws
                .iter()
                .map(|d| (d % 6, 1 + (d / 6) as usize))
                .collect();
            for (i, (tail_family, tail_len)) in tails.iter().enumerate() {
                // Branches share the preamble and diverge into one of six
                // tail families, exercising splits below the first level.
                let mut tokens = seq(0, preamble);
                tokens.extend(seq(1000 + tail_family * 100, *tail_len));
                tokens.push(2000 + i as u32); // unique final token
                let blocks = kv(tokens.len(), i as u64);
                cache.insert(tokens.clone(), blocks);
                cache.assert_consistent();
                inserted.push(tokens.clone());
                // Every other branch holds a live hit, pinning its path.
                if i % 2 == 0 {
                    hits.push(cache.lookup(&tokens).expect("just inserted"));
                }
            }
            // Refcounts reflect live pins: with all hits dropped, no node
            // may stay pinned.
            prop_assert!(cache.stats().pinned_entries <= cache.len());
            drop(hits);
            prop_assert_eq!(cache.stats().pinned_entries, 0,
                "dropping every hit must unpin every node");

            // The trie never exceeds the whole-sequence map's bytes.
            prop_assert!(cache.total_bytes() <= lcp_map_bytes(&inserted, per_token));
            // With >= 2 branches over one preamble it is strictly better.
            if inserted.len() >= 2 {
                prop_assert!(cache.total_bytes() < lcp_map_bytes(&inserted, per_token),
                    "branches over a common preamble must dedup");
            }

            for _ in 0..evictions {
                if cache.evict_lru_unpinned().is_none() {
                    break;
                }
                cache.assert_consistent();
            }
            // Partial eviction never frees an ancestor of a live node:
            // consistency (checked above) plus every still-resident prefix
            // remaining reachable — peek over every inserted sequence must
            // equal the longest resident root-path for it.
            for tokens in &inserted {
                let matched = cache.peek_prefix_len(tokens);
                // Whatever remains cached is a true prefix of the inserted
                // sequence and can be looked up if long enough.
                if matched >= cache.config().min_prefix_tokens {
                    let hit = cache.lookup(tokens).expect("resident prefix must hit");
                    prop_assert_eq!(hit.tokens(), matched);
                }
            }
        }

        /// With the cold tier enabled and a tight node cap, random
        /// insert/evict/repromote traffic keeps every trie invariant of the
        /// model above, and every hit — including hits over repromoted
        /// branches — returns rows bit-identical to the original prefill
        /// (all inserts use position-encoded rows, so the expected bits of
        /// an `m`-token hit are always `positional_kv(m)`).
        #[test]
        fn demote_repromote_preserves_trie_invariants(
            preamble in 4usize..10,
            tail_draws in proptest::collection::vec(0u32..42, 1..10),
            ops in proptest::collection::vec(0u32..1000, 0..12),
        ) {
            let mut cache = PrefixCache::new(
                PrefixCacheConfig::default()
                    .with_min_prefix_tokens(4)
                    .with_max_entries(4),
            );
            cache.enable_cold_tier(spill_path("prop"), 5).unwrap();
            let mut inserted: Vec<Vec<u32>> = Vec::new();
            for (i, d) in tail_draws.iter().enumerate() {
                let mut tokens = seq(0, preamble);
                tokens.extend(seq(1000 + (d % 6) * 100, 1 + (d / 6) as usize));
                tokens.push(2000 + i as u32);
                cache.insert(tokens.clone(), positional_kv(tokens.len()));
                cache.assert_consistent();
                inserted.push(tokens);
            }
            for op in ops {
                if op % 2 == 0 {
                    cache.evict_lru_unpinned();
                } else {
                    let target = &inserted[(op as usize / 2) % inserted.len()];
                    cache.repromote(target);
                }
                cache.assert_consistent();
            }
            // Every sequence is servable from RAM, the cold tier, or both;
            // whatever path serves it must produce bit-identical rows.
            for tokens in &inserted {
                if let Some((cold_len, _)) = cache.cold_match(tokens) {
                    if cold_len > cache.peek_prefix_len(tokens) {
                        cache.repromote(tokens);
                        cache.assert_consistent();
                    }
                }
                let matched = cache.peek_prefix_len(tokens);
                if matched >= cache.config().min_prefix_tokens {
                    let hit = cache.lookup(tokens).expect("resident prefix must hit");
                    prop_assert_eq!(hit.tokens(), matched);
                    let reference = positional_kv(hit.tokens());
                    prop_assert_eq!(hit.kv().block(0, 0).k(), reference.block(0, 0).k());
                    prop_assert_eq!(hit.kv().block(0, 0).v(), reference.block(0, 0).v());
                }
            }
        }
    }
}
