//! The Cocktail method: chunk-adaptive mixed-precision KV-cache
//! quantization for long-context LLM inference.
//!
//! This crate implements the paper's two modules and wires them into an
//! end-to-end pipeline:
//!
//! * **Module I — chunk-level quantization search** ([`search`]): the query
//!   and every context chunk are embedded by a retrieval encoder, cosine
//!   similarities are compared against two thresholds derived from the
//!   score range with hyper-parameters α and β (Eq. 2/3), and every chunk
//!   is assigned FP16, INT4 or INT2.
//! * **Module II — chunk-level KV cache computation** ([`reorder`],
//!   [`attention`]): KV chunks are reordered so chunks of equal bitwidth
//!   are physically contiguous, quantized according to the plan, and
//!   decode-phase attention is computed block-wise — one fused quantized
//!   GEMM per precision group plus one FP16 GEMM — exactly as in the
//!   paper's Algorithm 1. The output is mathematically identical to
//!   unpermuted attention (the paper's Eq. 4/5), which the property tests
//!   in this crate verify.
//! * [`CocktailPolicy`] exposes the method through the same
//!   [`CachePolicy`](cocktail_baselines::CachePolicy) interface as the
//!   baselines, and [`CocktailPipeline`] runs the whole flow
//!   (tokenize → prefill → search → reorder+quantize → decode) on a
//!   simulated model.
//! * The **serving layer** ([`ServingEngine`], [`BatchScheduler`],
//!   [`PrefixCache`]) answers many requests concurrently with continuous
//!   batching: a FIFO scheduler admits requests under a KV-memory budget
//!   measured in *compressed* bytes (so Cocktail's compression buys batch
//!   capacity), admission prefills arriving prompts in one batched pass —
//!   reusing the refcounted KV blocks of a token-trie prefix cache for
//!   contexts that repeat or branch off a common preamble —
//!   and every engine step decodes one token for the whole running batch
//!   through a single batched decode call. Batched, prefix-reusing serving
//!   is byte-identical to running the same requests sequentially through
//!   [`CocktailPipeline`].
//! * The **router layer** ([`Router`], [`PrefixFingerprintIndex`]) scales
//!   serving past one engine: N independent replicas — each with its own
//!   KV budget and prefix trie — behind a prefix-affinity router that
//!   sends branching conversations back to the replica where their shared
//!   preamble KV is already resident, and cold prompts to the
//!   least-loaded replica.
//! * The **persistence layer** ([`ServingEngine::snapshot_to`],
//!   [`ServingEngine::restore_from`], [`ServingEngine::with_cold_tier`])
//!   makes the prefix cache survive the process: a flat, versioned,
//!   checksummed snapshot format (from `cocktail_kvcache`) captures the
//!   trie and the tokenizer interning order it depends on, so a restarted
//!   engine — or a fresh replica pre-warmed via
//!   [`Router::prewarm_replica`] — serves its first warm request at warm
//!   TTFT, byte-identical to never having restarted; and a disk cold tier
//!   demotes evicted branches to a spill file instead of dropping them,
//!   repromoting on a later match under the same KV budget.
//!
//! # Example
//!
//! ```
//! use cocktail_core::{CocktailConfig, ChunkQuantSearch};
//! use cocktail_quant::Bitwidth;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let chunks = vec![
//!     "the weather report for tuesday says light rain".to_string(),
//!     "the vault combination is nine four seven two".to_string(),
//!     "lunch options include soup salad and sandwiches".to_string(),
//! ];
//! let config = CocktailConfig::default();
//! let search = ChunkQuantSearch::new(config.clone());
//! let plan = search.plan("what is the vault combination?", &chunks)?;
//! assert_eq!(plan.assignments().len(), 3);
//! assert_eq!(plan.assignments()[1], Bitwidth::Fp16); // the relevant chunk keeps full precision
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention;
mod config;
mod error;
mod pipeline;
mod policy;
mod prefix;
pub mod reorder;
mod router;
mod scheduler;
pub mod search;
mod serving;

pub use config::CocktailConfig;
pub use error::CocktailError;
pub use pipeline::{CocktailOutcome, CocktailPipeline, PipelineTimings};
pub use policy::CocktailPolicy;
pub use prefix::{PrefixCache, PrefixCacheConfig, PrefixCacheStats, PrefixHit, PrefixLease};
pub use router::{
    PrefixFingerprintIndex, RouteDecision, RoutePolicy, RoutedEvent, RoutedId, Router,
    RouterConfig, RouterStats,
};
pub use scheduler::{
    AdmitDecision, BatchScheduler, RequestId, SchedulerConfig, DEFAULT_PREFILL_WINDOW,
};
pub use search::{BitwidthPlan, ChunkQuantSearch};
pub use serving::{
    FinishReason, RequestOutcome, RequestState, RestoreReport, ServeRequest, ServeRequestBuilder,
    ServingEngine, ServingStats, SnapshotReport, TokenEvent,
};

// Sampling types re-exported from the model crate, so serving users can
// attach a sampler chain without depending on `cocktail_model` directly.
pub use cocktail_model::{SamplerChain, SamplingParams};

// Snapshot-format types re-exported from the KV substrate, so serving
// users can speak the wire format without depending on `cocktail_kvcache`
// directly.
pub use cocktail_kvcache::{
    read_snapshot, write_snapshot, SnapshotError, TrieSnapshot, SNAPSHOT_FORMAT_VERSION,
};
