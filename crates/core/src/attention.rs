//! Module II (part 2): block-wise mixed-precision decode attention
//! (Algorithm 1 of the paper).
//!
//! After reordering, the cached context keys form three contiguous blocks —
//! INT2, INT4 and FP16 — so the decode-phase attention can be computed as
//! one fused quantized GEMM per block plus one FP16 GEMM, concatenated,
//! softmaxed and recombined. The output is identical to ordinary attention
//! over the unpermuted cache because softmax and the weighted sum are
//! invariant to a permutation of the token axis (the paper's Eq. 4/5); the
//! property tests at the bottom of this module verify that equivalence
//! numerically.

use crate::error::CocktailError;
use cocktail_kvcache::{ChunkStorage, ChunkedLayerCache};
use cocktail_quant::{gemm, Bitwidth};
use cocktail_tensor::Matrix;

/// Result of the block-wise mixed-precision attention pass.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedAttention {
    /// Attention output, shape `(queries, head_dim)`.
    pub output: Matrix,
    /// Attention probabilities over the cache's physical token order.
    pub probabilities: Matrix,
    /// Tokens per precision block, in the order the blocks were processed:
    /// `[int2, int4, int8, fp16]` (INT8 is unused by the paper's
    /// configuration but supported for ablations; the FP16 block includes
    /// the remainder and the decode tail).
    pub block_tokens: [usize; 4],
}

impl GroupedAttention {
    /// Total number of cached tokens attended over.
    pub fn total_tokens(&self) -> usize {
        self.block_tokens.iter().sum()
    }
}

fn block_index(bitwidth: Bitwidth) -> usize {
    match bitwidth {
        Bitwidth::Int2 => 0,
        Bitwidth::Int4 => 1,
        Bitwidth::Int8 => 2,
        Bitwidth::Fp16 => 3,
    }
}

/// Computes decode-phase attention over a chunked (and typically reordered)
/// cache using the block-wise scheme of Algorithm 1.
///
/// The chunks are processed grouped by bitwidth — all INT2 chunks first,
/// then INT4, then INT8, then FP16 together with the FP16 remainder and the
/// decode tail — regardless of their physical order, so the function is
/// correct on unreordered caches too (reordering only matters for the
/// hardware model). Scores are scaled by `scale` before the softmax; no
/// causal mask is needed because during decode the query attends to every
/// cached token.
///
/// # Errors
///
/// Returns [`CocktailError::InvalidInput`] if the query head dimension does
/// not match the cache.
///
/// # Example
///
/// ```
/// use cocktail_core::attention::grouped_attend;
/// use cocktail_kvcache::{ChunkSegmentation, ChunkedLayerCache};
/// use cocktail_quant::Bitwidth;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = cocktail_tensor::rng::gaussian_matrix(64, 16, 1.0, 1);
/// let v = cocktail_tensor::rng::gaussian_matrix(64, 16, 1.0, 2);
/// let seg = ChunkSegmentation::new(64, 16)?;
/// let mut cache = ChunkedLayerCache::from_prefill(&k, &v, &seg)?;
/// cache.quantize_chunk(0, Bitwidth::Int2, 16)?;
/// let q = cocktail_tensor::rng::gaussian_matrix(1, 16, 1.0, 3);
/// let result = grouped_attend(&cache, &q, 0.25)?;
/// assert_eq!(result.output.shape(), (1, 16));
/// assert_eq!(result.total_tokens(), 64);
/// # Ok(())
/// # }
/// ```
pub fn grouped_attend(
    cache: &ChunkedLayerCache,
    queries: &Matrix,
    scale: f32,
) -> Result<GroupedAttention, CocktailError> {
    if queries.cols() != cache.head_dim() {
        return Err(CocktailError::InvalidInput(format!(
            "query head dim {} does not match cache head dim {}",
            queries.cols(),
            cache.head_dim()
        )));
    }

    // Group chunk indices by bitwidth, preserving physical order inside each
    // group. This mirrors the contiguous layout produced by the reordering
    // step; on an unreordered cache it simply gathers the same blocks
    // logically.
    let mut groups: [Vec<usize>; 4] = Default::default();
    for (i, chunk) in cache.chunks().iter().enumerate() {
        groups[block_index(chunk.bitwidth())].push(i);
    }

    // Phase 1 of Algorithm 1: per-block attention scores, concatenated along
    // the token axis (`att = cat(att, fqm(Q, K_b^T), -1)`).
    let mut score_blocks: Vec<Matrix> = Vec::new();
    let mut block_tokens = [0usize; 4];
    // Order of processed segments so phase 2 can walk the same layout.
    let mut processed: Vec<(usize, usize)> = Vec::new(); // (block, chunk physical index)

    for (block, members) in groups.iter().enumerate() {
        for &idx in members {
            let chunk = &cache.chunks()[idx];
            let scores = if chunk.outlier_count() > 0 {
                queries.matmul_transposed(&chunk.key_matrix())?
            } else {
                match chunk.storage() {
                    ChunkStorage::Fp16 { k, .. } => queries.matmul_transposed(k)?,
                    ChunkStorage::Quantized { k, .. } => {
                        gemm::fp_matmul_quant_transposed(queries, k)?
                    }
                }
            };
            block_tokens[block] += chunk.token_len();
            processed.push((block, idx));
            score_blocks.push(scores);
        }
    }
    // The FP16 remainder and decode tail belong to the FP16 block.
    let remainder_scores = {
        let k = cache.full_key_matrix();
        let total = cache.chunks().iter().map(|c| c.token_len()).sum::<usize>();
        let fp16_extra = k.slice_rows(total, k.rows());
        queries.matmul_transposed(&fp16_extra)?
    };
    block_tokens[3] += remainder_scores.cols();
    score_blocks.push(remainder_scores);

    let refs: Vec<&Matrix> = score_blocks.iter().collect();
    let mut att = Matrix::concat_cols(&refs)?;
    att.scale_in_place(scale);
    // Decode-phase mask is all zeros, so `softmax(att + mask)` is just the
    // softmax.
    att.softmax_rows();

    // Phase 2: per-block partial outputs, summed
    // (`output += fqm(att[block], V_b)`).
    let mut output = Matrix::zeros(queries.rows(), cache.head_dim());
    let mut col = 0usize;
    for &(_, idx) in &processed {
        let chunk = &cache.chunks()[idx];
        let len = chunk.token_len();
        if len == 0 {
            continue;
        }
        let probs = att.slice_cols(col, col + len);
        let partial = if chunk.outlier_count() > 0 {
            probs.matmul(&chunk.value_matrix())?
        } else {
            match chunk.storage() {
                ChunkStorage::Fp16 { v, .. } => probs.matmul(v)?,
                ChunkStorage::Quantized { v, .. } => gemm::fp_matmul_quant(&probs, v)?,
            }
        };
        output.add_assign(&partial)?;
        col += len;
    }
    // FP16 remainder + tail block.
    let v_full = cache.full_value_matrix();
    let chunk_total: usize = cache.chunks().iter().map(|c| c.token_len()).sum();
    let fp16_extra_v = v_full.slice_rows(chunk_total, v_full.rows());
    if fp16_extra_v.rows() > 0 {
        let probs = att.slice_cols(col, col + fp16_extra_v.rows());
        output.add_assign(&probs.matmul(&fp16_extra_v)?)?;
    }

    Ok(GroupedAttention {
        output,
        probabilities: att,
        block_tokens,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CocktailConfig;
    use crate::reorder::apply_plan;
    use crate::search::ChunkQuantSearch;
    use cocktail_kvcache::ChunkSegmentation;
    use cocktail_tensor::rng;
    use proptest::prelude::*;

    fn build_cache(tokens: usize, chunk: usize, seed: u64) -> ChunkedLayerCache {
        let k = rng::gaussian_matrix(tokens, 16, 1.0, seed);
        let v = rng::gaussian_matrix(tokens, 16, 1.0, seed + 1);
        let seg = ChunkSegmentation::new(tokens, chunk).unwrap();
        ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap()
    }

    fn plan_from(scores: &[f32]) -> crate::search::BitwidthPlan {
        ChunkQuantSearch::new(CocktailConfig::default())
            .plan_from_scores(scores)
            .unwrap()
    }

    #[test]
    fn grouped_attention_matches_generic_attention() {
        let mut cache = build_cache(130, 32, 1); // 4 chunks + remainder of 2
                                                 // alpha = 0.6, beta = 0.1 over range [0.05, 0.9]: T_low = 0.56,
                                                 // T_high = 0.815, so the assignment is [Int2, Fp16, Int4, Int2].
        let plan = plan_from(&[0.05, 0.9, 0.6, 0.1]);
        apply_plan(&mut cache, &plan, 32, true).unwrap();
        cache.append_decode_token(&[0.1; 16], &[0.2; 16]).unwrap();

        let q = rng::gaussian_matrix(1, 16, 1.0, 9);
        let scale = 0.25;
        let grouped = grouped_attend(&cache, &q, scale).unwrap();
        let generic = cache.attend(&q, scale).unwrap();
        assert!(grouped.output.max_abs_diff(&generic.output).unwrap() < 1e-4);
        assert_eq!(grouped.total_tokens(), 131);
        assert_eq!(grouped.block_tokens[0], 64); // two INT2 chunks
        assert_eq!(grouped.block_tokens[3], 32 + 2 + 1); // FP16 chunk + remainder + tail
    }

    #[test]
    fn reordering_preserves_attention_output_exactly() {
        // The paper's equivalence argument (Eq. 4/5): quantize the same
        // chunks to the same precisions with and without reordering and the
        // decode attention output must match.
        let plan = plan_from(&[0.02, 0.95, 0.4, 0.6, 0.1]);
        let q = rng::gaussian_matrix(1, 16, 1.0, 42);
        let scale = 1.0 / 4.0;

        let mut reordered = build_cache(160, 32, 5);
        apply_plan(&mut reordered, &plan, 32, true).unwrap();
        let out_reordered = grouped_attend(&reordered, &q, scale).unwrap();

        let mut in_place = build_cache(160, 32, 5);
        apply_plan(&mut in_place, &plan, 32, false).unwrap();
        let out_in_place = grouped_attend(&in_place, &q, scale).unwrap();

        assert!(
            out_reordered
                .output
                .max_abs_diff(&out_in_place.output)
                .unwrap()
                < 1e-4
        );
    }

    #[test]
    fn all_fp16_grouped_attention_matches_dense_reference() {
        let cache = build_cache(96, 32, 11);
        let q = rng::gaussian_matrix(2, 16, 1.0, 13);
        let scale = 0.3;
        let grouped = grouped_attend(&cache, &q, scale).unwrap();

        let k = cache.full_key_matrix();
        let v = cache.full_value_matrix();
        let mut scores = q.matmul_transposed(&k).unwrap();
        scores.scale_in_place(scale);
        scores.softmax_rows();
        let reference = scores.matmul(&v).unwrap();
        assert!(grouped.output.max_abs_diff(&reference).unwrap() < 1e-4);
        assert_eq!(grouped.block_tokens, [0, 0, 0, 96]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut cache = build_cache(64, 16, 17);
        let plan = plan_from(&[0.1, 0.9, 0.5, 0.2]);
        apply_plan(&mut cache, &plan, 16, true).unwrap();
        let q = rng::gaussian_matrix(3, 16, 1.0, 19);
        let grouped = grouped_attend(&cache, &q, 0.25).unwrap();
        for r in 0..3 {
            let sum: f32 = grouped.probabilities.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn wrong_query_dim_is_rejected() {
        let cache = build_cache(32, 16, 23);
        let q = Matrix::zeros(1, 8);
        assert!(grouped_attend(&cache, &q, 1.0).is_err());
    }

    #[test]
    fn heavier_quantization_of_irrelevant_chunks_barely_moves_output() {
        // Quantizing chunks that receive little attention mass should change
        // the output much less than quantizing the chunk the query actually
        // attends to. This is the mechanism Cocktail exploits.
        let tokens = 128;
        let chunk = 32;
        let dim = 16;
        let k = rng::gaussian_matrix(tokens, dim, 1.0, 31);
        let v = rng::gaussian_matrix(tokens, dim, 1.0, 32);
        let seg = ChunkSegmentation::new(tokens, chunk).unwrap();
        // Make the query point strongly at a token in chunk 1.
        let q = {
            let mut q = Matrix::zeros(1, dim);
            q.row_mut(0).copy_from_slice(k.row(40));
            q.scale_in_place(2.0);
            q
        };
        let scale = 1.0 / (dim as f32).sqrt();

        let reference = ChunkedLayerCache::from_prefill(&k, &v, &seg)
            .unwrap()
            .attend(&q, scale)
            .unwrap()
            .output;

        // Case A: quantize everything except chunk 1 to INT2.
        let mut keep_relevant = ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap();
        for i in [0usize, 2, 3] {
            keep_relevant.quantize_chunk(i, Bitwidth::Int2, 32).unwrap();
        }
        let err_keep = grouped_attend(&keep_relevant, &q, scale)
            .unwrap()
            .output
            .max_abs_diff(&reference)
            .unwrap();

        // Case B: quantize the relevant chunk 1 to INT2, keep the rest FP16.
        let mut drop_relevant = ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap();
        drop_relevant.quantize_chunk(1, Bitwidth::Int2, 32).unwrap();
        let err_drop = grouped_attend(&drop_relevant, &q, scale)
            .unwrap()
            .output
            .max_abs_diff(&reference)
            .unwrap();

        assert!(
            err_keep < err_drop,
            "quantizing irrelevant chunks (err {err_keep}) should hurt less than quantizing the relevant one (err {err_drop})"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn grouped_and_generic_attention_always_agree(
            seed in 0u64..200,
            chunk_scores in proptest::collection::vec(0.0f32..1.0, 2..6),
        ) {
            let chunks = chunk_scores.len();
            let tokens = chunks * 16 + 3;
            let mut cache = build_cache(tokens, 16, seed);
            let plan = plan_from(&chunk_scores);
            apply_plan(&mut cache, &plan, 16, true).unwrap();
            let q = rng::gaussian_matrix(1, 16, 1.0, seed + 100);
            let grouped = grouped_attend(&cache, &q, 0.25).unwrap();
            let generic = cache.attend(&q, 0.25).unwrap();
            prop_assert!(grouped.output.max_abs_diff(&generic.output).unwrap() < 1e-3);
        }
    }
}
