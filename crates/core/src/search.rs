//! Module I: chunk-level quantization search.
//!
//! The search computes the cosine similarity between the query and every
//! context chunk (Eq. 1 of the paper), derives the two thresholds from the
//! score range (Eq. 2/3) and assigns a bitwidth to every chunk:
//!
//! * `score > T_high` → FP16 (highly relevant — keep full precision),
//! * `score < T_low`  → INT2 (irrelevant — compress aggressively),
//! * otherwise        → INT4 (the compromise band).

use crate::config::CocktailConfig;
use crate::error::CocktailError;
use cocktail_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// The outcome of the chunk-level quantization search for one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitwidthPlan {
    scores: Vec<f32>,
    t_low: f32,
    t_high: f32,
    assignments: Vec<Bitwidth>,
}

impl BitwidthPlan {
    /// The raw similarity score of every chunk.
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    /// The low threshold `T_low` (Eq. 2).
    pub fn t_low(&self) -> f32 {
        self.t_low
    }

    /// The high threshold `T_high` (Eq. 3).
    pub fn t_high(&self) -> f32 {
        self.t_high
    }

    /// The bitwidth assigned to each chunk, in logical chunk order.
    pub fn assignments(&self) -> &[Bitwidth] {
        &self.assignments
    }

    /// Number of chunks assigned to the given bitwidth.
    pub fn count(&self, bitwidth: Bitwidth) -> usize {
        self.assignments.iter().filter(|&&b| b == bitwidth).count()
    }

    /// Average bits per element across all chunks under this plan (a quick
    /// proxy for the compression the plan achieves on the chunked portion).
    pub fn mean_bits(&self) -> f32 {
        if self.assignments.is_empty() {
            return 0.0;
        }
        self.assignments
            .iter()
            .map(|b| b.bits() as f32)
            .sum::<f32>()
            / self.assignments.len() as f32
    }
}

/// The chunk-level quantization search module.
///
/// # Example
///
/// ```
/// use cocktail_core::{ChunkQuantSearch, CocktailConfig};
///
/// # fn main() -> Result<(), cocktail_core::CocktailError> {
/// let search = ChunkQuantSearch::new(CocktailConfig::default());
/// let chunks = vec![
///     "annual rainfall statistics for the region".to_string(),
///     "the ceo announced the acquisition of meridian labs".to_string(),
/// ];
/// let plan = search.plan("what did the ceo announce about meridian labs?", &chunks)?;
/// assert!(plan.scores()[1] > plan.scores()[0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ChunkQuantSearch {
    config: CocktailConfig,
}

impl ChunkQuantSearch {
    /// Creates the search module with the given configuration.
    pub fn new(config: CocktailConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CocktailConfig {
        &self.config
    }

    /// Scores the chunks with the configured encoder and derives the plan.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn plan(&self, query: &str, chunk_texts: &[String]) -> Result<BitwidthPlan, CocktailError> {
        self.config.validate()?;
        let scorer = self.config.encoder.build();
        let scores = scorer.score(query, chunk_texts);
        self.plan_from_scores(&scores)
    }

    /// Derives the plan from precomputed similarity scores (one per chunk).
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError::InvalidConfig`] if the configuration fails
    /// validation, or [`CocktailError::InvalidInput`] if any score is not
    /// finite.
    pub fn plan_from_scores(&self, scores: &[f32]) -> Result<BitwidthPlan, CocktailError> {
        self.config.validate()?;
        if scores.iter().any(|s| !s.is_finite()) {
            return Err(CocktailError::InvalidInput(
                "similarity scores must be finite".into(),
            ));
        }
        if scores.is_empty() {
            return Ok(BitwidthPlan {
                scores: Vec::new(),
                t_low: 0.0,
                t_high: 0.0,
                assignments: Vec::new(),
            });
        }
        let s_min = scores.iter().cloned().fold(f32::INFINITY, f32::min);
        let s_max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let range = s_max - s_min;
        // Eq. 2 and Eq. 3 of the paper.
        let t_low = s_min + range * self.config.alpha;
        let t_high = s_max - range * self.config.beta;

        let assignments = scores
            .iter()
            .map(|&s| {
                if range == 0.0 {
                    // Degenerate case: every chunk is equally relevant; the
                    // compromise precision is the safe choice.
                    Bitwidth::Int4
                } else if s > t_high {
                    Bitwidth::Fp16
                } else if s < t_low {
                    Bitwidth::Int2
                } else {
                    Bitwidth::Int4
                }
            })
            .collect();
        Ok(BitwidthPlan {
            scores: scores.to_vec(),
            t_low,
            t_high,
            assignments,
        })
    }

    /// The relevance-blind fallback used by the "w/o Module I" ablation:
    /// the same three precision levels are used in fixed proportions
    /// (roughly matching what the search typically produces: one FP16 chunk
    /// in ten, three INT4 in ten, the rest INT2) but assigned purely by
    /// chunk position, with no knowledge of the query.
    pub fn plan_without_search(&self, chunk_count: usize) -> BitwidthPlan {
        let assignments: Vec<Bitwidth> = (0..chunk_count)
            .map(|i| match i % 10 {
                0 => Bitwidth::Fp16,
                1..=3 => Bitwidth::Int4,
                _ => Bitwidth::Int2,
            })
            .collect();
        BitwidthPlan {
            scores: vec![0.0; chunk_count],
            t_low: 0.0,
            t_high: 0.0,
            assignments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn search_with(alpha: f32, beta: f32) -> ChunkQuantSearch {
        ChunkQuantSearch::new(
            CocktailConfig::default()
                .with_alpha(alpha)
                .unwrap()
                .with_beta(beta)
                .unwrap(),
        )
    }

    #[test]
    fn thresholds_follow_equations_2_and_3() {
        let search = search_with(0.6, 0.1);
        let plan = search.plan_from_scores(&[0.0, 0.5, 1.0]).unwrap();
        assert!((plan.t_low() - 0.6).abs() < 1e-6);
        assert!((plan.t_high() - 0.9).abs() < 1e-6);
    }

    #[test]
    fn assignment_bands_are_correct() {
        let search = search_with(0.5, 0.2);
        // range [0,1]: T_low = 0.5, T_high = 0.8.
        let plan = search
            .plan_from_scores(&[0.0, 0.49, 0.5, 0.65, 0.8, 0.81, 1.0])
            .unwrap();
        assert_eq!(
            plan.assignments(),
            &[
                Bitwidth::Int2, // 0.0 < 0.5
                Bitwidth::Int2, // 0.49 < 0.5
                Bitwidth::Int4, // 0.5 is not strictly below T_low
                Bitwidth::Int4, // middle band
                Bitwidth::Int4, // 0.8 is not strictly above T_high
                Bitwidth::Fp16, // 0.81 > 0.8
                Bitwidth::Fp16, // max
            ]
        );
    }

    #[test]
    fn equal_scores_fall_back_to_int4() {
        let search = search_with(0.6, 0.1);
        let plan = search.plan_from_scores(&[0.3, 0.3, 0.3]).unwrap();
        assert!(plan.assignments().iter().all(|&b| b == Bitwidth::Int4));
    }

    #[test]
    fn larger_alpha_quantizes_more_chunks_to_int2() {
        let scores: Vec<f32> = (0..20).map(|i| i as f32 / 19.0).collect();
        let low_alpha = search_with(0.2, 0.1).plan_from_scores(&scores).unwrap();
        let high_alpha = search_with(0.8, 0.1).plan_from_scores(&scores).unwrap();
        assert!(high_alpha.count(Bitwidth::Int2) > low_alpha.count(Bitwidth::Int2));
        assert!(high_alpha.mean_bits() < low_alpha.mean_bits());
    }

    #[test]
    fn larger_beta_keeps_more_chunks_fp16() {
        let scores: Vec<f32> = (0..20).map(|i| i as f32 / 19.0).collect();
        let small_beta = search_with(0.3, 0.05).plan_from_scores(&scores).unwrap();
        let large_beta = search_with(0.3, 0.5).plan_from_scores(&scores).unwrap();
        assert!(large_beta.count(Bitwidth::Fp16) > small_beta.count(Bitwidth::Fp16));
    }

    #[test]
    fn empty_and_invalid_scores() {
        let search = search_with(0.6, 0.1);
        let empty = search.plan_from_scores(&[]).unwrap();
        assert!(empty.assignments().is_empty());
        assert_eq!(empty.mean_bits(), 0.0);
        assert!(search.plan_from_scores(&[0.1, f32::NAN]).is_err());
    }

    #[test]
    fn end_to_end_plan_keeps_relevant_chunk_fp16() {
        let search = ChunkQuantSearch::new(CocktailConfig::default());
        let chunks: Vec<String> = (0..12)
            .map(|i| {
                if i == 7 {
                    "the launch password is crimson falcon seven".to_string()
                } else {
                    format!("routine log entry number {i} nothing notable happened today at the station")
                }
            })
            .collect();
        let plan = search
            .plan("what is the launch password?", &chunks)
            .unwrap();
        assert_eq!(plan.assignments()[7], Bitwidth::Fp16);
        assert!(
            plan.count(Bitwidth::Int2) >= 6,
            "most chunks should be INT2"
        );
    }

    #[test]
    fn fallback_plan_is_relevance_blind_but_mixed() {
        let search = ChunkQuantSearch::new(CocktailConfig::default());
        let plan = search.plan_without_search(20);
        assert_eq!(plan.assignments().len(), 20);
        assert_eq!(plan.count(Bitwidth::Fp16), 2);
        assert_eq!(plan.count(Bitwidth::Int4), 6);
        assert_eq!(plan.count(Bitwidth::Int2), 12);
    }

    proptest! {
        #[test]
        fn every_assignment_is_one_of_the_three_levels(
            scores in proptest::collection::vec(-1.0f32..1.0, 0..64),
            alpha in 0.0f32..0.9,
            beta in 0.0f32..0.1,
        ) {
            let search = search_with(alpha, beta);
            let plan = search.plan_from_scores(&scores).unwrap();
            prop_assert_eq!(plan.assignments().len(), scores.len());
            for bw in plan.assignments() {
                prop_assert!(Bitwidth::COCKTAIL_LEVELS.contains(bw));
            }
        }

        #[test]
        fn max_score_is_never_int2_and_min_never_fp16(
            scores in proptest::collection::vec(-1.0f32..1.0, 2..64),
            alpha in 0.05f32..0.9,
            beta in 0.0f32..0.1,
        ) {
            let search = search_with(alpha, beta);
            let plan = search.plan_from_scores(&scores).unwrap();
            let max_idx = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            let min_idx = scores
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            prop_assert_ne!(plan.assignments()[max_idx], Bitwidth::Int2);
            prop_assert_ne!(plan.assignments()[min_idx], Bitwidth::Fp16);
        }
    }
}
