//! Prefix-affinity routing across N independent serving-engine replicas.
//!
//! One [`ServingEngine`] saturates one accelerator; heavy traffic needs a
//! fleet. The fleet-level problem is *placement*: the token-trie prefix
//! cache ([`crate::PrefixCache`]) only pays off when a branching
//! conversation keeps landing on the replica where its shared preamble KV
//! is already resident. [`Router`] solves this with a cheap, shared
//! *prefix-fingerprint index*:
//!
//! * Every routed context is summarised as rolling fingerprints of its
//!   leading words at fixed stride boundaries ([`PrefixFingerprintIndex`]).
//!   Fingerprints are computed on *words*, not token ids, so the index is
//!   replica-agnostic (token ids are interned per engine).
//! * An incoming request probes the index longest-boundary-first. A hit
//!   means some replica has served (and likely still caches) that prefix:
//!   the request is routed by *rendezvous hash* of the matched fingerprint
//!   over its owners, so repeated branches of one preamble pick the same
//!   replica without any coordination.
//! * A cold prompt (no boundary matches) falls back to the least-loaded
//!   replica, then records its own fingerprints so the next branch of the
//!   same conversation is warm.
//!
//! The index is advisory: a stale entry (the replica has since evicted the
//! prefix) costs a cache miss, never correctness. Byte-identity holds per
//! replica — each request's output equals a solo [`crate::CocktailPipeline`]
//! replay of *that replica's* request subsequence in submission order — and
//! the in-process [`Router`] in this module is the reference
//! implementation the HTTP gateway's threaded replica pool mirrors.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::error::CocktailError;
use crate::prefix::PrefixCacheConfig;
use crate::scheduler::{RequestId, SchedulerConfig};
use crate::serving::{
    RequestOutcome, RestoreReport, ServeRequest, ServingEngine, ServingStats, TokenEvent,
};
use cocktail_model::ModelProfile;

/// Tuning knobs for the [`PrefixFingerprintIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// Maximum number of leading context words fingerprinted per request.
    /// Prefixes longer than this window still match on the window's final
    /// boundary.
    pub window_words: usize,
    /// A fingerprint boundary is recorded every `stride_words` words (and
    /// at the end of the window). Smaller strides match shorter shared
    /// preambles at the cost of more index entries.
    pub stride_words: usize,
    /// Cap on distinct fingerprints held by the index; the oldest entries
    /// are dropped first. Dropped entries only cost affinity, never
    /// correctness.
    pub max_entries: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            window_words: 64,
            stride_words: 8,
            max_entries: 4096,
        }
    }
}

/// How the [`Router`] picks a replica for each submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Prefix-affinity routing through the fingerprint index (the
    /// default): longest-prefix match, rendezvous hash over owners,
    /// least-loaded fallback for cold prompts.
    PrefixAffinity,
    /// Strict round-robin, ignoring prefixes entirely. The baseline the
    /// `replica_affinity` experiment compares against.
    RoundRobin,
}

/// Where one request was routed and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// The chosen replica.
    pub replica: usize,
    /// Number of leading words of the longest matched fingerprint
    /// boundary (0 on a cold route).
    pub matched_words: usize,
    /// `true` when the decision came from a fingerprint match; `false`
    /// for the least-loaded cold fallback.
    pub affinity: bool,
}

/// Cumulative routing counters (the gateway reports these in
/// `/api/v1/stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests routed via a fingerprint match.
    pub affinity_routed: usize,
    /// Cold requests routed to the least-loaded replica.
    pub least_loaded_routed: usize,
}

/// The shared prefix-fingerprint index: maps rolling word-prefix
/// fingerprints to the replicas that have served them.
///
/// The index never inspects replica tries directly — probing N tries per
/// request would serialize the fleet on every submit. Instead it is an
/// *approximation* maintained on the routing path itself: recording is
/// O(window/stride) hash inserts, routing is O(window/stride) lookups.
///
/// # Example
///
/// ```
/// use cocktail_core::{PrefixFingerprintIndex, RouterConfig};
///
/// let mut index = PrefixFingerprintIndex::new(2, RouterConfig::default());
/// let preamble = "alpha beta gamma delta epsilon zeta eta theta";
/// // First branch of the conversation: cold, goes to the less loaded
/// // replica 1 and records its fingerprints there.
/// let cold = index.route(&format!("{preamble} first branch"), &[3, 1]);
/// assert!(!cold.affinity);
/// assert_eq!(cold.replica, 1);
/// index.record(&format!("{preamble} first branch"), cold.replica);
/// // Second branch shares the preamble: routed back to replica 1 even
/// // though it is now the *more* loaded one.
/// let warm = index.route(&format!("{preamble} second branch"), &[0, 9]);
/// assert!(warm.affinity);
/// assert_eq!(warm.replica, 1);
/// ```
#[derive(Debug)]
pub struct PrefixFingerprintIndex {
    replicas: usize,
    config: RouterConfig,
    owners: HashMap<u64, Vec<usize>>,
    /// Insertion order of fingerprints, for FIFO eviction at
    /// `max_entries`.
    order: VecDeque<u64>,
    stats: RouterStats,
}

impl PrefixFingerprintIndex {
    /// An empty index over `replicas` replicas.
    ///
    /// # Panics
    ///
    /// Panics when `replicas` is zero or the config has a zero stride or
    /// window.
    pub fn new(replicas: usize, config: RouterConfig) -> Self {
        assert!(replicas > 0, "at least one replica is required");
        assert!(
            config.stride_words > 0 && config.window_words > 0,
            "fingerprint window and stride must be non-zero"
        );
        Self {
            replicas,
            config,
            owners: HashMap::new(),
            order: VecDeque::new(),
            stats: RouterStats::default(),
        }
    }

    /// Number of replicas routed over.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Cumulative routing counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Number of distinct fingerprints currently held.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// `true` when no fingerprint has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Rolling FNV-1a fingerprints of the context's leading words, one per
    /// stride boundary: `[(words_covered, fingerprint), ...]`, shortest
    /// first.
    fn boundaries(&self, context: &str) -> Vec<(usize, u64)> {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut hash = FNV_OFFSET;
        let mut out = Vec::new();
        for (i, word) in context
            .split_whitespace()
            .take(self.config.window_words)
            .enumerate()
        {
            for byte in word.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
            // A separator byte keeps "ab c" and "a bc" distinct.
            hash ^= 0xFF;
            hash = hash.wrapping_mul(FNV_PRIME);
            let words = i + 1;
            if words % self.config.stride_words == 0 || words == self.config.window_words {
                out.push((words, hash));
            }
        }
        out
    }

    /// Routes one context: longest-boundary fingerprint match wins (with a
    /// rendezvous hash breaking multi-owner ties deterministically); a cold
    /// context goes to the replica with the smallest load (lowest index on
    /// ties). `loads` must have one entry per replica.
    pub fn route(&mut self, context: &str, loads: &[usize]) -> RouteDecision {
        assert_eq!(loads.len(), self.replicas, "one load entry per replica");
        for (words, fingerprint) in self.boundaries(context).into_iter().rev() {
            let Some(owners) = self.owners.get(&fingerprint) else {
                continue;
            };
            let replica = owners
                .iter()
                .copied()
                .max_by_key(|&owner| (rendezvous(fingerprint, owner), self.replicas - owner))
                .expect("owner lists are never empty");
            self.stats.affinity_routed += 1;
            return RouteDecision {
                replica,
                matched_words: words,
                affinity: true,
            };
        }
        let replica = (0..self.replicas)
            .min_by_key(|&r| (loads[r], r))
            .expect("at least one replica");
        self.stats.least_loaded_routed += 1;
        RouteDecision {
            replica,
            matched_words: 0,
            affinity: false,
        }
    }

    /// Records that `replica` now holds the context's prefix: every stride
    /// boundary fingerprint gains `replica` as an owner. Call after the
    /// routed submit succeeds (skip it when admission answered busy).
    pub fn record(&mut self, context: &str, replica: usize) {
        assert!(replica < self.replicas, "replica index out of range");
        for (_, fingerprint) in self.boundaries(context) {
            let owners = self.owners.entry(fingerprint).or_insert_with(|| {
                self.order.push_back(fingerprint);
                Vec::new()
            });
            if !owners.contains(&replica) {
                owners.push(replica);
            }
        }
        while self.owners.len() > self.config.max_entries {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.owners.remove(&oldest);
        }
    }
}

/// Deterministic rendezvous score of a replica for a fingerprint
/// (SplitMix64 finalizer over the pair).
fn rendezvous(fingerprint: u64, replica: usize) -> u64 {
    let mut z = fingerprint ^ (replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A request id qualified by the replica serving it. Engine-local
/// [`RequestId`]s repeat across replicas; this pair is unique fleet-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoutedId {
    /// The replica that owns the request.
    pub replica: usize,
    /// The engine-local request id on that replica.
    pub id: RequestId,
}

impl fmt::Display for RoutedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}:{}", self.replica, self.id)
    }
}

/// A [`TokenEvent`] tagged with the replica that produced it.
#[derive(Debug, Clone)]
pub struct RoutedEvent {
    /// The replica the event came from.
    pub replica: usize,
    /// The engine event (its `id` is local to that replica).
    pub event: TokenEvent,
}

impl RoutedEvent {
    /// The fleet-wide id of the request this event belongs to.
    pub fn routed_id(&self) -> RoutedId {
        RoutedId {
            replica: self.replica,
            id: self.event.id,
        }
    }
}

/// N independent [`ServingEngine`] replicas behind one prefix-affinity
/// router — the in-process reference implementation of multi-replica
/// serving (the HTTP gateway runs the same index over per-replica driver
/// threads).
///
/// Each replica owns its own KV budget, prefix trie and tokenizer; the
/// router only decides placement. All per-request operations
/// ([`Router::cancel`], [`Router::take_outcome`], ...) address requests by
/// [`RoutedId`], which names the owning replica explicitly.
///
/// # Example
///
/// ```
/// use cocktail_core::{CocktailConfig, PrefixCacheConfig, Router, ServeRequest};
/// use cocktail_model::ModelProfile;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut router = Router::new(2, ModelProfile::tiny(), CocktailConfig::default())?
///     .with_prefix_cache(PrefixCacheConfig::default());
/// let context = "the harbour master logs every arriving vessel at dawn \
///                and the dock code for pier nine is lantern";
/// let id = router.submit(ServeRequest::new(context, "what is the dock code?", 4));
/// router.run_until_idle()?;
/// let outcome = router.take_outcome(id).expect("request completed");
/// assert!(!outcome.outcome.answer.is_empty());
/// # Ok(())
/// # }
/// ```
pub struct Router {
    engines: Vec<ServingEngine>,
    index: PrefixFingerprintIndex,
    policy: RoutePolicy,
    /// Per-replica: a cancel parked a terminal event inside the engine;
    /// force one more step even though the scheduler reports idle.
    flush_needed: Vec<bool>,
    round_robin_next: usize,
}

impl Router {
    /// Builds `replicas` identical engines for the given model and
    /// Cocktail configuration, with prefix-affinity routing and a default
    /// [`RouterConfig`].
    ///
    /// # Errors
    ///
    /// Returns the engine construction error (invalid model/config).
    ///
    /// # Panics
    ///
    /// Panics when `replicas` is zero.
    pub fn new(
        replicas: usize,
        profile: ModelProfile,
        config: crate::CocktailConfig,
    ) -> Result<Self, CocktailError> {
        assert!(replicas > 0, "at least one replica is required");
        let mut engines = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            engines.push(ServingEngine::new(profile.clone(), config.clone())?);
        }
        Ok(Self {
            engines,
            index: PrefixFingerprintIndex::new(replicas, RouterConfig::default()),
            policy: RoutePolicy::PrefixAffinity,
            flush_needed: vec![false; replicas],
            round_robin_next: 0,
        })
    }

    /// Applies one scheduler configuration to every replica. Panics (like
    /// [`ServingEngine::with_scheduler_config`]) once traffic was
    /// submitted.
    pub fn with_scheduler_config(mut self, config: SchedulerConfig) -> Self {
        self.engines = self
            .engines
            .into_iter()
            .map(|engine| engine.with_scheduler_config(config))
            .collect();
        self
    }

    /// Enables the shared-prefix cache on every replica. Panics (like
    /// [`ServingEngine::with_prefix_cache`]) once traffic was submitted.
    pub fn with_prefix_cache(mut self, cache: PrefixCacheConfig) -> Self {
        self.engines = self
            .engines
            .into_iter()
            .map(|engine| engine.with_prefix_cache(cache))
            .collect();
        self
    }

    /// Replaces the routing policy (prefix affinity by default).
    pub fn with_policy(mut self, policy: RoutePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the fingerprint-index configuration.
    pub fn with_router_config(mut self, config: RouterConfig) -> Self {
        assert!(
            self.index.is_empty(),
            "router config must be set before routing traffic"
        );
        self.index = PrefixFingerprintIndex::new(self.engines.len(), config);
        self
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.engines.len()
    }

    /// Read access to one replica's engine (stats, budget, cache
    /// inspection).
    pub fn engine(&self, replica: usize) -> &ServingEngine {
        &self.engines[replica]
    }

    /// Cumulative routing counters.
    pub fn routing_stats(&self) -> RouterStats {
        self.index.stats()
    }

    /// Routes and submits one request, returning its fleet-wide id.
    pub fn submit(&mut self, request: ServeRequest) -> RoutedId {
        let (id, _) = self.submit_routed(request);
        id
    }

    /// Routes and submits one request, also returning the routing
    /// decision (which the `replica_affinity` experiment inspects).
    pub fn submit_routed(&mut self, request: ServeRequest) -> (RoutedId, RouteDecision) {
        let decision = match self.policy {
            RoutePolicy::RoundRobin => {
                let replica = self.round_robin_next % self.engines.len();
                self.round_robin_next += 1;
                RouteDecision {
                    replica,
                    matched_words: 0,
                    affinity: false,
                }
            }
            RoutePolicy::PrefixAffinity => {
                let loads: Vec<usize> = self
                    .engines
                    .iter()
                    .map(|e| e.scheduler().queued_len() + e.scheduler().running_len())
                    .collect();
                let decision = self.index.route(&request.context, &loads);
                self.index.record(&request.context, decision.replica);
                decision
            }
        };
        let id = self.engines[decision.replica].submit(request);
        (
            RoutedId {
                replica: decision.replica,
                id,
            },
            decision,
        )
    }

    /// Cancels a routed request on its owning replica. Only that replica's
    /// budget, queue slot and prefix pins are touched. Returns `false`
    /// when the request already finished.
    pub fn cancel(&mut self, id: RoutedId) -> bool {
        if self.engines[id.replica].cancel(id.id) {
            self.flush_needed[id.replica] = true;
            true
        } else {
            false
        }
    }

    /// Runs one step on every replica with work pending, collecting the
    /// replica-tagged token events.
    ///
    /// # Errors
    ///
    /// Returns the first replica's fatal step error; other replicas are
    /// left untouched and can keep serving.
    pub fn step_events(&mut self) -> Result<Vec<RoutedEvent>, CocktailError> {
        let mut out = Vec::new();
        for (replica, engine) in self.engines.iter_mut().enumerate() {
            if engine.is_idle() && !self.flush_needed[replica] {
                continue;
            }
            self.flush_needed[replica] = false;
            for event in engine.step_events()? {
                out.push(RoutedEvent { replica, event });
            }
        }
        Ok(out)
    }

    /// `true` when every replica is idle and no cancel flush is pending.
    pub fn is_idle(&self) -> bool {
        self.engines.iter().all(ServingEngine::is_idle) && self.flush_needed.iter().all(|f| !f)
    }

    /// Steps until every replica drains, discarding events. Completed
    /// outcomes stay collectable via [`Router::take_outcome`].
    ///
    /// # Errors
    ///
    /// Returns the first fatal step error.
    pub fn run_until_idle(&mut self) -> Result<(), CocktailError> {
        while !self.is_idle() {
            self.step_events()?;
        }
        Ok(())
    }

    /// Removes and returns the outcome of a completed routed request.
    pub fn take_outcome(&mut self, id: RoutedId) -> Option<RequestOutcome> {
        self.engines[id.replica].take_outcome(id.id)
    }

    /// Removes and returns the stats of a cancelled routed request.
    pub fn take_cancelled(&mut self, id: RoutedId) -> Option<ServingStats> {
        self.engines[id.replica].take_cancelled(id.id)
    }

    /// Removes and returns the failure message and stats of a failed
    /// routed request.
    pub fn take_failure(&mut self, id: RoutedId) -> Option<(String, ServingStats)> {
        self.engines[id.replica].take_failure(id.id)
    }

    /// Total compressed KV bytes in use across all replicas.
    pub fn kv_bytes_in_use(&self) -> usize {
        self.engines
            .iter()
            .map(ServingEngine::kv_bytes_in_use)
            .sum()
    }

    /// Total prefix-reused tokens across all replicas (0 when no cache is
    /// configured).
    pub fn prefix_reused_tokens(&self) -> u64 {
        self.engines
            .iter()
            .filter_map(ServingEngine::prefix_cache_stats)
            .map(|s| s.reused_tokens)
            .sum()
    }

    /// Seeds `target`'s prefix cache from a snapshot of `source`'s cache —
    /// fleet pre-warming: a replica joining a warm fleet serves its first
    /// shared-preamble requests at warm TTFT instead of re-prefilling what
    /// a sibling already holds. The snapshot carries the source replica's
    /// tokenizer interning order, which the target replays; any
    /// incompatibility (the target already interned diverging traffic, or
    /// the engines were somehow built with different configurations)
    /// degrades to a cold start reported in the returned [`RestoreReport`]
    /// — never corruption.
    ///
    /// # Panics
    ///
    /// Panics when either replica index is out of range.
    pub fn prewarm_replica(&mut self, target: usize, source: usize) -> RestoreReport {
        assert!(
            target < self.engines.len() && source < self.engines.len(),
            "replica index out of range"
        );
        if target == source {
            return RestoreReport {
                restored: false,
                nodes: 0,
                resident_bytes: 0,
                reason: Some("source and target are the same replica".to_string()),
            };
        }
        let bytes = self.engines[source].snapshot_bytes();
        self.engines[target].restore_from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CocktailConfig, CocktailPipeline, FinishReason};
    use proptest::prelude::*;

    fn config() -> CocktailConfig {
        CocktailConfig::default().with_chunk_size(8).unwrap()
    }

    /// Branching multi-tenant contexts: `groups` tenants, each with a
    /// long shared preamble, `per_group` branches each diverging right
    /// after it. Requests interleave tenants (round-robin) like real
    /// traffic.
    fn tenant_contexts(groups: usize, per_group: usize) -> Vec<(String, String)> {
        let preamble = |g: usize| -> String {
            (0..8)
                .map(|i| format!("tenant{g} directive {i} mandates hourly status reports"))
                .collect::<Vec<_>>()
                .join(" . ")
        };
        (0..groups * per_group)
            .map(|i| {
                let g = i % groups;
                (
                    format!(
                        "{} . branch note {i} the access code for vault {i} is emberstone{i}",
                        preamble(g)
                    ),
                    format!("what is the access code for vault {i}?"),
                )
            })
            .collect()
    }

    #[test]
    fn index_routes_shared_prefixes_to_their_recorded_owner() {
        let mut index = PrefixFingerprintIndex::new(3, RouterConfig::default());
        let contexts = tenant_contexts(2, 3);
        // First branch of tenant 0: cold, least-loaded picks replica 2.
        let first = index.route(&contexts[0].0, &[4, 7, 1]);
        assert!(!first.affinity);
        assert_eq!(first.matched_words, 0);
        assert_eq!(first.replica, 2);
        index.record(&contexts[0].0, first.replica);
        // Later branches of tenant 0 share the preamble: affinity routes
        // them back to replica 2 regardless of load.
        for ctx in [&contexts[2].0, &contexts[4].0] {
            let warm = index.route(ctx, &[0, 0, 99]);
            assert!(warm.affinity, "shared preamble must match");
            assert_eq!(warm.replica, 2);
            assert!(warm.matched_words >= RouterConfig::default().stride_words);
        }
        // Tenant 1 shares nothing: still cold.
        let other = index.route(&contexts[1].0, &[0, 5, 5]);
        assert!(!other.affinity);
        assert_eq!(other.replica, 0);
        let stats = index.stats();
        assert_eq!(stats.affinity_routed, 2);
        assert_eq!(stats.least_loaded_routed, 2);
    }

    #[test]
    fn index_prefers_the_longest_matched_boundary() {
        let config = RouterConfig {
            window_words: 16,
            stride_words: 4,
            max_entries: 64,
        };
        let mut index = PrefixFingerprintIndex::new(2, config);
        let short = "alpha beta gamma delta";
        let long = format!("{short} epsilon zeta eta theta iota kappa lambda mu");
        // Replica 0 owns the short prefix, replica 1 the long one.
        index.record(short, 0);
        index.record(&long, 1);
        // A context extending the long prefix must follow its owner, not
        // the shorter match recorded for replica 0.
        let decision = index.route(&format!("{long} extra tail words here"), &[0, 0]);
        assert!(decision.affinity);
        assert_eq!(decision.replica, 1);
        assert_eq!(decision.matched_words, 12);
    }

    #[test]
    fn index_eviction_caps_entries_and_only_costs_affinity() {
        let config = RouterConfig {
            window_words: 8,
            stride_words: 4,
            max_entries: 4,
        };
        let mut index = PrefixFingerprintIndex::new(2, config);
        for i in 0..16 {
            index.record(
                &format!("conversation {i} preamble words one two three four five"),
                i % 2,
            );
        }
        assert!(index.len() <= 4, "index exceeded its cap: {}", index.len());
        // Evicted prefixes fall back to cold routing (no panic, no wrong
        // owner).
        let decision = index.route(
            "conversation 0 preamble words one two three four five",
            &[1, 0],
        );
        let _ = decision.affinity; // either outcome is valid; must not panic
    }

    #[test]
    fn rendezvous_choice_is_deterministic() {
        let mut a = PrefixFingerprintIndex::new(4, RouterConfig::default());
        let mut b = PrefixFingerprintIndex::new(4, RouterConfig::default());
        let ctx = "november oscar papa quebec romeo sierra tango uniform victor whiskey";
        for index in [&mut a, &mut b] {
            index.record(ctx, 1);
            index.record(ctx, 3);
        }
        let da = a.route(ctx, &[0, 0, 0, 0]);
        let db = b.route(ctx, &[0, 0, 0, 0]);
        assert_eq!(da.replica, db.replica);
        assert!([1, 3].contains(&da.replica), "owner set respected");
    }

    #[test]
    fn routed_serving_is_byte_identical_to_per_replica_solo_replays() {
        let contexts = tenant_contexts(2, 3);
        let mut router = Router::new(2, ModelProfile::tiny(), config())
            .unwrap()
            .with_prefix_cache(crate::PrefixCacheConfig::default());
        let ids: Vec<RoutedId> = contexts
            .iter()
            .map(|(ctx, q)| router.submit(ServeRequest::new(ctx.clone(), q.clone(), 6)))
            .collect();
        router.run_until_idle().unwrap();

        // Reference: each replica's routed subsequence replayed in
        // submission order through a fresh solo pipeline (token interning
        // is engine-local, so the reference must replay the same prompt
        // history).
        for replica in 0..router.replicas() {
            let pipeline = CocktailPipeline::new(ModelProfile::tiny(), config()).unwrap();
            for (i, id) in ids.iter().enumerate() {
                if id.replica != replica {
                    continue;
                }
                let (ctx, q) = &contexts[i];
                let solo = pipeline.run(ctx, q, 6).unwrap();
                let outcome = router.take_outcome(*id).expect("request completed");
                assert_eq!(
                    outcome.outcome.answer, solo.answer,
                    "request {i} diverged from its replica-local solo replay"
                );
            }
        }
        // Both tenants' branches shared their preamble somewhere: the
        // fleet reused tokens.
        assert!(router.prefix_reused_tokens() > 0);
    }

    #[test]
    fn affinity_beats_round_robin_on_reused_tokens() {
        // Three tenants over two replicas: round-robin placement cannot
        // align with tenant identity (with two tenants it accidentally
        // would), so it smears every tenant across both replicas.
        let contexts = tenant_contexts(3, 4);
        let serve = |policy: RoutePolicy| -> u64 {
            let mut router = Router::new(2, ModelProfile::tiny(), config())
                .unwrap()
                .with_prefix_cache(crate::PrefixCacheConfig::default())
                .with_policy(policy);
            for (ctx, q) in &contexts {
                router.submit(ServeRequest::new(ctx.clone(), q.clone(), 4));
            }
            router.run_until_idle().unwrap();
            router.prefix_reused_tokens()
        };
        let affinity = serve(RoutePolicy::PrefixAffinity);
        let round_robin = serve(RoutePolicy::RoundRobin);
        // Round-robin interleaving splits each tenant across both
        // replicas, paying the preamble prefill once per (tenant,
        // replica) pair; affinity pays it once per tenant.
        assert!(
            affinity > round_robin,
            "affinity reused {affinity} <= round-robin {round_robin}"
        );
    }

    #[test]
    fn cancel_releases_budget_on_the_owning_replica_only() {
        let contexts = tenant_contexts(2, 2);
        let mut router = Router::new(2, ModelProfile::tiny(), config()).unwrap();
        let ids: Vec<RoutedId> = contexts
            .iter()
            .map(|(ctx, q)| router.submit(ServeRequest::new(ctx.clone(), q.clone(), 8)))
            .collect();
        // Two tenants, affinity routing, fresh index: tenant 0 and
        // tenant 1 land on different replicas (cold fallback alternates
        // with load).
        assert!(
            ids.iter().any(|id| id.replica == 0) && ids.iter().any(|id| id.replica == 1),
            "traffic must spread over both replicas: {ids:?}"
        );
        // Let everything start decoding.
        router.step_events().unwrap();
        router.step_events().unwrap();
        let victim = ids[0];
        let other = 1 - victim.replica;
        let before_owner = router.engine(victim.replica).kv_bytes_in_use();
        let before_other = router.engine(other).kv_bytes_in_use();
        assert!(router.cancel(victim));
        assert!(
            router.engine(victim.replica).kv_bytes_in_use() < before_owner,
            "cancel must release budget on the owning replica"
        );
        assert_eq!(
            router.engine(other).kv_bytes_in_use(),
            before_other,
            "cancel must not touch the other replica's budget"
        );
        assert!(!router.cancel(victim), "double cancel is a no-op");
        router.run_until_idle().unwrap();
        assert!(router.take_cancelled(victim).is_some());
        for id in &ids[1..] {
            assert!(router.take_outcome(*id).is_some(), "{id} must survive");
        }
    }

    #[test]
    fn prewarming_seeds_a_fresh_replica_from_a_warm_sibling() {
        let contexts = tenant_contexts(1, 3);
        let mut router = Router::new(2, ModelProfile::tiny(), config())
            .unwrap()
            .with_prefix_cache(crate::PrefixCacheConfig::default());
        // Warm up replica 0 only (affinity keeps one tenant together).
        let first = router.submit(ServeRequest::new(
            contexts[0].0.clone(),
            contexts[0].1.clone(),
            4,
        ));
        router.run_until_idle().unwrap();
        let source = first.replica;
        let target = 1 - source;
        assert!(router.engine(target).prefix_cache_stats().unwrap().nodes == 0);

        // Pre-warm the idle replica from the warm one.
        let report = router.prewarm_replica(target, source);
        assert!(report.restored, "prewarm failed: {:?}", report.reason);
        assert!(report.nodes > 0);
        assert_eq!(
            router.engine(target).prefix_cache_stats().unwrap().nodes,
            report.nodes
        );

        // Same-replica prewarm degrades with a reason instead of looping
        // a snapshot back into itself.
        let same = router.prewarm_replica(source, source);
        assert!(!same.restored);
        assert!(same.reason.is_some());
    }

    #[test]
    fn replica_failure_surfaces_failed_without_hanging_the_fleet() {
        let contexts = tenant_contexts(2, 1);
        let mut router = Router::new(2, ModelProfile::tiny(), config()).unwrap();
        let healthy = router.submit(ServeRequest::new(
            contexts[0].0.clone(),
            contexts[0].1.clone(),
            4,
        ));
        // An empty context fails admission-side encoding on whichever
        // replica it lands on.
        let doomed = router.submit(ServeRequest::new("", "query", 4));
        assert_ne!(healthy.replica, doomed.replica, "cold routing spreads load");
        let mut finishes = HashMap::new();
        while !router.is_idle() {
            for routed in router.step_events().unwrap() {
                if let Some(reason) = routed.event.finish {
                    finishes.insert(routed.routed_id(), reason);
                }
            }
        }
        // The failure surfaced as a terminal event — no hang — and the
        // healthy replica finished normally.
        assert_eq!(finishes.get(&doomed), Some(&FinishReason::Failed));
        assert_eq!(finishes.get(&healthy), Some(&FinishReason::Length));
        let (message, _) = router.take_failure(doomed).expect("failure recorded");
        assert!(!message.is_empty());
        assert!(router.take_outcome(healthy).is_some());
        assert_eq!(router.kv_bytes_in_use(), 0, "no leaked budget after drain");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Random routed admission/cancel interleavings never violate any
        /// replica's KV-budget invariant, always release every replica's
        /// prefix pins by idle, and leave every surviving request
        /// byte-identical to its replica-local solo replay.
        #[test]
        fn routed_cancellations_preserve_every_replicas_budget_and_pins(
            per_group in 2usize..4,
            cancel_seed in 0u64..500,
            cancel_count in 1usize..4,
        ) {
            let contexts = tenant_contexts(2, per_group);
            let max_new = 6usize;
            // Budget sized for roughly two requests per replica, so
            // admission takes turns under cancellations.
            let probe = CocktailPipeline::new(ModelProfile::tiny(), config()).unwrap();
            let tail = (max_new - 1) * probe.engine().config().kv_bytes_per_token_fp16();
            let budget = contexts
                .iter()
                .map(|(ctx, q)| probe.run(ctx, q, max_new).unwrap().cache_bytes + tail)
                .max()
                .expect("at least one request") * 2;

            let mut router = Router::new(2, ModelProfile::tiny(), config())
                .unwrap()
                .with_scheduler_config(SchedulerConfig::default().with_budget(budget))
                .with_prefix_cache(crate::PrefixCacheConfig::default().with_min_prefix_tokens(4));
            let ids: Vec<RoutedId> = contexts
                .iter()
                .map(|(ctx, q)| router.submit(ServeRequest::new(ctx.clone(), q.clone(), max_new)))
                .collect();

            // A deterministic cancellation schedule drawn from the seed.
            let mut schedule: Vec<(usize, RoutedId)> = (0..cancel_count)
                .map(|i| {
                    let mix = cancel_seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64);
                    ((mix % 7) as usize, ids[(mix >> 8) as usize % ids.len()])
                })
                .collect();
            schedule.sort_unstable();
            schedule.dedup_by_key(|(_, id)| *id);

            let mut cancelled: Vec<RoutedId> = Vec::new();
            let mut steps = 0usize;
            let mut guard = 0;
            while !router.is_idle() {
                guard += 1;
                prop_assert!(guard < 10_000, "routed serving failed to quiesce");
                for (at, id) in &schedule {
                    if *at <= steps && !cancelled.contains(id) && router.cancel(*id) {
                        cancelled.push(*id);
                    }
                }
                router.step_events().unwrap();
                steps += 1;
                for replica in 0..router.replicas() {
                    prop_assert!(
                        router.engine(replica).kv_bytes_in_use() <= budget,
                        "replica {replica} violated its budget: {} > {budget}",
                        router.engine(replica).kv_bytes_in_use()
                    );
                }
            }

            for replica in 0..router.replicas() {
                let cache = router
                    .engine(replica)
                    .prefix_cache_stats()
                    .expect("cache enabled");
                prop_assert_eq!(
                    cache.pinned_entries, 0,
                    "idle replica {} must hold no prefix pins", replica
                );
            }

            // Survivors must match their replica-local solo replays (the
            // replay includes cancelled requests: their prompts were — at
            // the latest by the cancel step — part of the replica's
            // interning history).
            for replica in 0..router.replicas() {
                let pipeline = CocktailPipeline::new(ModelProfile::tiny(), config()).unwrap();
                for (i, id) in ids.iter().enumerate() {
                    if id.replica != replica {
                        continue;
                    }
                    let (ctx, q) = &contexts[i];
                    let solo = pipeline.run(ctx, q, max_new).unwrap();
                    if cancelled.contains(id) {
                        let stats = router.take_cancelled(*id).expect("cancelled stats");
                        prop_assert!(stats.cancelled);
                    } else {
                        let outcome = router.take_outcome(*id).expect("survivor completed");
                        prop_assert_eq!(
                            &outcome.outcome.answer, &solo.answer,
                            "request {} diverged from its replica-local replay", i
                        );
                    }
                }
            }
        }
    }
}
