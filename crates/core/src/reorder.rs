//! Module II (part 1): KV-cache chunk reordering.
//!
//! Mixed-precision quantization naturally interleaves chunks of different
//! bitwidths in memory, which costs extra cache lines and kernel switches
//! during decode (Figure 3 of the paper). Reordering groups all chunks of
//! the same bitwidth contiguously; because softmax attention is invariant
//! to a permutation of the key/value token order (Eq. 4/5), the result is
//! numerically identical.

use crate::search::BitwidthPlan;
use cocktail_kvcache::{ChunkPermutation, ChunkedLayerCache, KvCacheError};
use cocktail_quant::Bitwidth;

/// Builds the permutation that groups chunks by their assigned bitwidth
/// (lowest precision first, preserving logical order within each group —
/// the layout of Figure 3 in the paper).
///
/// # Example
///
/// ```
/// use cocktail_core::reorder::group_by_bitwidth;
/// use cocktail_quant::Bitwidth;
///
/// let assignments = [
///     Bitwidth::Fp16,
///     Bitwidth::Int2,
///     Bitwidth::Int4,
///     Bitwidth::Int2,
/// ];
/// let perm = group_by_bitwidth(&assignments);
/// // INT2 chunks (1, 3) first, then INT4 (2), then FP16 (0).
/// assert_eq!(perm.as_slice(), &[1, 3, 2, 0]);
/// ```
pub fn group_by_bitwidth(assignments: &[Bitwidth]) -> ChunkPermutation {
    ChunkPermutation::stable_sort_by_key(assignments)
}

/// Number of chunks in each contiguous precision group after reordering,
/// in ascending precision order: `(int2, int4, fp16)`. These are the
/// `len_2` / `len_4` block lengths of Algorithm 1.
pub fn group_lengths(assignments: &[Bitwidth]) -> (usize, usize, usize) {
    let int2 = assignments.iter().filter(|&&b| b == Bitwidth::Int2).count();
    let int4 = assignments.iter().filter(|&&b| b == Bitwidth::Int4).count();
    let fp16 = assignments.iter().filter(|&&b| b == Bitwidth::Fp16).count();
    (int2, int4, fp16)
}

/// Applies a bitwidth plan to one layer cache: optionally reorders the
/// chunks so equal-precision chunks are contiguous, then quantizes every
/// chunk according to its assignment.
///
/// The plan's assignments are indexed by *logical* chunk index, so the
/// function follows the cache's permutation when looking up the target
/// precision of each physical chunk.
///
/// # Errors
///
/// Returns a [`KvCacheError`] if the plan length does not match the
/// cache's chunk count or a quantization step fails.
pub fn apply_plan(
    cache: &mut ChunkedLayerCache,
    plan: &BitwidthPlan,
    group_size: usize,
    reorder: bool,
) -> Result<(), KvCacheError> {
    if plan.assignments().len() != cache.chunk_count() {
        return Err(KvCacheError::InvalidPermutation(format!(
            "plan covers {} chunks but the cache has {}",
            plan.assignments().len(),
            cache.chunk_count()
        )));
    }
    if reorder {
        let perm = group_by_bitwidth(plan.assignments());
        cache.reorder(&perm)?;
    }
    for physical in 0..cache.chunk_count() {
        let logical = cache.chunks()[physical].logical_index();
        let target = plan.assignments()[logical];
        if target.is_float() {
            continue; // FP16 chunks are already stored at full precision.
        }
        cache.quantize_chunk(physical, target, group_size)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CocktailConfig;
    use crate::search::ChunkQuantSearch;
    use cocktail_kvcache::ChunkSegmentation;
    use cocktail_tensor::rng;
    use proptest::prelude::*;

    fn cache(tokens: usize, chunk: usize, seed: u64) -> ChunkedLayerCache {
        let k = rng::gaussian_matrix(tokens, 16, 1.0, seed);
        let v = rng::gaussian_matrix(tokens, 16, 1.0, seed + 1);
        let seg = ChunkSegmentation::new(tokens, chunk).unwrap();
        ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap()
    }

    fn plan_for(scores: &[f32]) -> BitwidthPlan {
        ChunkQuantSearch::new(CocktailConfig::default())
            .plan_from_scores(scores)
            .unwrap()
    }

    #[test]
    fn grouping_orders_by_precision_then_logical_index() {
        let assignments = [
            Bitwidth::Int4,
            Bitwidth::Fp16,
            Bitwidth::Int2,
            Bitwidth::Int4,
            Bitwidth::Int2,
        ];
        let perm = group_by_bitwidth(&assignments);
        assert_eq!(perm.as_slice(), &[2, 4, 0, 3, 1]);
        assert_eq!(group_lengths(&assignments), (2, 2, 1));
    }

    #[test]
    fn apply_plan_quantizes_to_assigned_bitwidths() {
        let mut c = cache(128, 32, 1);
        let plan = plan_for(&[0.1, 0.2, 0.5, 0.95]);
        apply_plan(&mut c, &plan, 32, true).unwrap();
        // After reordering, chunks are grouped: INT2 first, FP16 last.
        let widths: Vec<Bitwidth> = c.chunks().iter().map(|ch| ch.bitwidth()).collect();
        let mut sorted = widths.clone();
        sorted.sort();
        assert_eq!(widths, sorted, "chunks must be grouped by precision");
        // Each logical chunk got the bitwidth the plan assigned.
        for chunk in c.chunks() {
            assert_eq!(chunk.bitwidth(), plan.assignments()[chunk.logical_index()]);
        }
    }

    #[test]
    fn apply_plan_without_reorder_keeps_logical_order() {
        let mut c = cache(128, 32, 3);
        let plan = plan_for(&[0.9, 0.1, 0.5, 0.2]);
        apply_plan(&mut c, &plan, 32, false).unwrap();
        let logical: Vec<usize> = c.chunks().iter().map(|ch| ch.logical_index()).collect();
        assert_eq!(logical, vec![0, 1, 2, 3]);
        assert_eq!(c.chunks()[0].bitwidth(), Bitwidth::Fp16);
        assert_eq!(c.chunks()[1].bitwidth(), Bitwidth::Int2);
    }

    #[test]
    fn apply_plan_rejects_length_mismatch() {
        let mut c = cache(64, 32, 5);
        let plan = plan_for(&[0.1, 0.2, 0.3]);
        assert!(apply_plan(&mut c, &plan, 32, true).is_err());
    }

    #[test]
    fn reordering_does_not_change_total_storage() {
        let plan = plan_for(&[0.05, 0.5, 0.92, 0.3]);
        let mut reordered = cache(128, 32, 7);
        apply_plan(&mut reordered, &plan, 32, true).unwrap();
        let mut in_place = cache(128, 32, 7);
        apply_plan(&mut in_place, &plan, 32, false).unwrap();
        assert_eq!(reordered.storage_bytes(), in_place.storage_bytes());
    }

    proptest! {
        #[test]
        fn grouped_permutation_is_always_valid(
            raw in proptest::collection::vec(0u8..3, 0..40)
        ) {
            let assignments: Vec<Bitwidth> = raw
                .iter()
                .map(|&r| Bitwidth::COCKTAIL_LEVELS[r as usize])
                .collect();
            let perm = group_by_bitwidth(&assignments);
            prop_assert_eq!(perm.len(), assignments.len());
            let reordered = perm.apply(&assignments);
            prop_assert!(reordered.windows(2).all(|w| w[0] <= w[1]));
            let (a, b, c) = group_lengths(&assignments);
            prop_assert_eq!(a + b + c, assignments.len());
        }
    }
}
