//! The batched serving engine: many concurrent requests over one model.
//!
//! [`CocktailPipeline`](crate::CocktailPipeline) runs one request at a time;
//! this module is the multi-request serving surface built on the same
//! machinery. A [`ServingEngine`] owns the model engine plus one
//! [`ChunkedKvCache`] per in-flight request, and a
//! [`BatchScheduler`](crate::BatchScheduler) admits queued requests under a
//! KV-memory budget measured in *compressed* bytes — so Cocktail's
//! quantization directly buys batch capacity, exactly the economics of the
//! paper's Figure 6.
//!
//! Scheduling is continuous batching: each [`ServingEngine::step`] first
//! admits (and prefills) whatever fits from the queue head, then runs one
//! decode round in which every running request produces one token through a
//! single [`decode_step_batch`](cocktail_model::InferenceEngine::decode_step_batch)
//! call. Requests therefore join and leave the batch while others are
//! mid-decode. Because the batched decode is row-wise bit-identical to
//! single-request decode, batched serving returns byte-identical answers to
//! running the same requests sequentially — only faster, since the weight
//! streaming of each decode step is amortized over the batch.
//!
//! Admission itself is batched and prefix-aware. Up to
//! [`SchedulerConfig::prefill_window`](crate::SchedulerConfig) queued
//! prompts are prefilled together through one
//! [`prefill_batch`](cocktail_model::InferenceEngine::prefill_batch) call,
//! amortizing QKV/MLP weight streaming over the arriving prompts exactly as
//! the decode path does over the running batch. With
//! [`ServingEngine::with_prefix_cache`] enabled, requests whose context
//! opens with previously served tokens reuse the token-trie prefix cache's
//! KV blocks instead of re-prefilling them — divergent branches share
//! their common preamble's blocks exactly once, the budget is charged per
//! trie node, and pressure trims the tree leaf-ward (partial eviction)
//! rather than dropping whole contexts.
//! Both optimizations are bit-exact: prefill is causal and row-wise, so a
//! batched or prefix-resumed prefill produces byte-identical outputs to a
//! cold sequential one (asserted by tests and property tests).

use crate::config::CocktailConfig;
use crate::error::CocktailError;
use crate::pipeline::{CocktailOutcome, PipelineTimings};
use crate::policy::CocktailPolicy;
use crate::prefix::{
    common_prefix_len, PrefixCache, PrefixCacheConfig, PrefixCacheStats, PrefixHit, PrefixLease,
};
use crate::scheduler::{AdmitDecision, BatchScheduler, RequestId, SchedulerConfig};
use crate::search::BitwidthPlan;
use cocktail_baselines::{CachePolicy, PolicyContext, PolicyReport};
use cocktail_kvcache::{
    read_snapshot, write_snapshot, ChunkSegmentation, ChunkedKvCache, ChunkedLayerCache,
    PrefixKvBlock, SharedPrefixKv, TrieSnapshot,
};
use cocktail_model::{
    BatchPrefill, DecodeSlot, DecodeStep, InferenceEngine, ModelProfile, PrefillSlot, SamplerChain,
    SamplingParams,
};
use cocktail_retrieval::chunking;
use cocktail_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One serving request: a context, a query and a generation budget.
///
/// Construct through [`ServeRequest::builder`], which gathers every knob —
/// cache policy, stop sequences, prefix reuse — in one place:
///
/// ```
/// use cocktail_core::ServeRequest;
///
/// let request = ServeRequest::builder()
///     .context("the night ferry code is osprey.")
///     .query("what is the code?")
///     .max_new_tokens(8)
///     .stop_sequence("osprey")
///     .build();
/// assert_eq!(request.max_new_tokens, 8);
/// ```
///
/// [`ServeRequest::new`] remains the shorthand for a default-policy
/// request; the scattered `with_*` constructors are deprecated in favor of
/// the builder.
pub struct ServeRequest {
    /// The long context to answer from.
    pub context: String,
    /// The user query.
    pub query: String,
    /// Maximum number of tokens to generate.
    pub max_new_tokens: usize,
    policy: Option<Box<dyn CachePolicy>>,
    stop_sequences: Vec<String>,
    prefix_reuse: bool,
    sampling: Option<SamplingParams>,
}

impl ServeRequest {
    /// Creates a request served with the engine's default (Cocktail)
    /// policy.
    pub fn new(
        context: impl Into<String>,
        query: impl Into<String>,
        max_new_tokens: usize,
    ) -> Self {
        Self {
            context: context.into(),
            query: query.into(),
            max_new_tokens,
            policy: None,
            stop_sequences: Vec::new(),
            prefix_reuse: true,
            sampling: None,
        }
    }

    /// Starts a [`ServeRequestBuilder`] with an empty context/query and a
    /// zero token budget.
    pub fn builder() -> ServeRequestBuilder {
        ServeRequestBuilder::default()
    }

    /// Returns a copy of this request served with an explicit cache policy
    /// instead of the engine default.
    #[deprecated(since = "0.1.0", note = "use ServeRequest::builder().policy(..)")]
    pub fn with_policy(mut self, policy: Box<dyn CachePolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Adds a stop sequence: generation ends (with
    /// [`FinishReason::Stop`]) as soon as the streamed answer text
    /// contains `stop`. The matched text is kept in the answer, so the
    /// streamed pieces still concatenate to the collected outcome
    /// byte-for-byte. Empty sequences are ignored.
    #[deprecated(
        since = "0.1.0",
        note = "use ServeRequest::builder().stop_sequence(..)"
    )]
    pub fn with_stop_sequence(mut self, stop: impl Into<String>) -> Self {
        let stop = stop.into();
        if !stop.is_empty() {
            self.stop_sequences.push(stop);
        }
        self
    }
}

impl fmt::Debug for ServeRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeRequest")
            .field("context_chars", &self.context.len())
            .field("query", &self.query)
            .field("max_new_tokens", &self.max_new_tokens)
            .field(
                "policy",
                &self.policy.as_ref().map_or("engine default", |p| p.name()),
            )
            .field("stop_sequences", &self.stop_sequences)
            .field("prefix_reuse", &self.prefix_reuse)
            .field("sampling", &self.sampling)
            .finish()
    }
}

/// Builder for a [`ServeRequest`], consolidating the request knobs that
/// used to live in scattered `with_*` constructors.
///
/// Defaults: engine-default (Cocktail) cache policy, no stop sequences,
/// prefix reuse enabled, greedy decode (no sampling).
///
/// # Example
///
/// ```
/// use cocktail_core::{CocktailConfig, SamplingParams, ServeRequest, ServingEngine};
/// use cocktail_model::ModelProfile;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = CocktailConfig::default().with_chunk_size(8)?;
/// let mut engine = ServingEngine::new(ModelProfile::tiny(), config)?;
/// let context = "the harbor log notes that the night ferry code is osprey.";
/// // Stopping on a word of the answer ends the request before its full
/// // 8-token budget.
/// let id = engine.submit(
///     ServeRequest::builder()
///         .context(context)
///         .query("what is the night ferry code?")
///         .max_new_tokens(8)
///         .stop_sequence("osprey")
///         .build(),
/// );
/// let outcome = engine.run_until_idle()?.pop().expect("one completed request");
/// assert_eq!(outcome.id, id);
/// if outcome.outcome.answer.contains("osprey") {
///     assert!(outcome.outcome.answer.ends_with("osprey"));
///     assert!(outcome.outcome.generated_tokens.len() < 8);
/// }
///
/// // Sampled decode: attach SamplingParams. Identical seeds replay
/// // bit-identically, on this engine or any other with the same config.
/// let sampled = || {
///     ServeRequest::builder()
///         .context(context)
///         .query("what is the night ferry code?")
///         .max_new_tokens(8)
///         .sampling(SamplingParams::seeded(7).with_temperature(0.8).with_top_k(16))
///         .build()
/// };
/// engine.submit(sampled());
/// let first = engine.run_until_idle()?.pop().expect("sampled request");
/// engine.submit(sampled());
/// let replay = engine.run_until_idle()?.pop().expect("sampled replay");
/// assert_eq!(first.outcome.answer, replay.outcome.answer);
/// # Ok(())
/// # }
/// ```
pub struct ServeRequestBuilder {
    context: String,
    query: String,
    max_new_tokens: usize,
    policy: Option<Box<dyn CachePolicy>>,
    stop_sequences: Vec<String>,
    prefix_reuse: bool,
    sampling: Option<SamplingParams>,
}

impl Default for ServeRequestBuilder {
    fn default() -> Self {
        Self {
            context: String::new(),
            query: String::new(),
            max_new_tokens: 0,
            policy: None,
            stop_sequences: Vec::new(),
            prefix_reuse: true,
            sampling: None,
        }
    }
}

impl fmt::Debug for ServeRequestBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeRequestBuilder")
            .field("context_chars", &self.context.len())
            .field("query", &self.query)
            .field("max_new_tokens", &self.max_new_tokens)
            .field(
                "policy",
                &self.policy.as_ref().map_or("engine default", |p| p.name()),
            )
            .field("stop_sequences", &self.stop_sequences)
            .field("prefix_reuse", &self.prefix_reuse)
            .field("sampling", &self.sampling)
            .finish()
    }
}

impl ServeRequestBuilder {
    /// Sets the long context to answer from.
    pub fn context(mut self, context: impl Into<String>) -> Self {
        self.context = context.into();
        self
    }

    /// Sets the user query.
    pub fn query(mut self, query: impl Into<String>) -> Self {
        self.query = query.into();
        self
    }

    /// Sets the generation budget.
    pub fn max_new_tokens(mut self, max_new_tokens: usize) -> Self {
        self.max_new_tokens = max_new_tokens;
        self
    }

    /// Serves the request with an explicit cache policy instead of the
    /// engine default.
    pub fn policy(mut self, policy: Box<dyn CachePolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Adds a stop sequence: generation ends (with [`FinishReason::Stop`])
    /// as soon as the streamed answer text contains it. The matched text is
    /// kept in the answer, so the streamed pieces still concatenate to the
    /// collected outcome byte-for-byte. Empty sequences are ignored; call
    /// repeatedly for several triggers.
    pub fn stop_sequence(mut self, stop: impl Into<String>) -> Self {
        let stop = stop.into();
        if !stop.is_empty() {
            self.stop_sequences.push(stop);
        }
        self
    }

    /// Whether this request may read from (and publish to) the engine's
    /// shared prefix trie — including the snapshot-restored and cold-tier
    /// paths. Defaults to `true`; turning it off forces a fully cold
    /// prefill for this request and keeps its context out of snapshots,
    /// which is the right call for contexts that must not persist across
    /// restarts or leak into other tenants' warm hits.
    pub fn prefix_reuse(mut self, enabled: bool) -> Self {
        self.prefix_reuse = enabled;
        self
    }

    /// Decodes with the given sampling chain instead of greedy argmax.
    /// The chain's seeded ChaCha stream is private to this request, so a
    /// resubmission with identical params (including
    /// [`SamplingParams::seed`]) replays bit-identically regardless of
    /// batch composition, replica placement or engine restarts. Passing a
    /// greedy-temperature chain (`temperature == 0.0`) is byte-identical
    /// to omitting sampling entirely.
    pub fn sampling(mut self, params: SamplingParams) -> Self {
        self.sampling = Some(params);
        self
    }

    /// Finalizes the request.
    pub fn build(self) -> ServeRequest {
        ServeRequest {
            context: self.context,
            query: self.query,
            max_new_tokens: self.max_new_tokens,
            policy: self.policy,
            stop_sequences: self.stop_sequences,
            prefix_reuse: self.prefix_reuse,
            sampling: self.sampling,
        }
    }
}

/// Lifecycle state of a serving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestState {
    /// Submitted but not yet admitted by the scheduler (it may already be
    /// prefilled and waiting for memory).
    Queued,
    /// Admitted: its compressed cache is charged against the budget and it
    /// decodes one token per engine step.
    Running,
    /// Finished; its outcome is available.
    Completed,
    /// Terminally failed (e.g. it can never fit the memory budget).
    Failed,
    /// Cancelled by the client via [`ServingEngine::cancel`]; its KV
    /// budget is released and its stats remain available.
    Cancelled,
}

/// Why a request stopped generating tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FinishReason {
    /// The generation budget (`max_new_tokens`) was exhausted.
    Length,
    /// A stop sequence appeared in the streamed answer text.
    Stop,
    /// The client cancelled the request mid-flight.
    Cancelled,
    /// The request failed terminally before or during admission (invalid
    /// input, or a prompt that can never fit the memory budget); the
    /// message is available via [`ServingEngine::failure`] /
    /// [`ServingEngine::take_failure`].
    Failed,
}

/// One streamed token of one request, emitted by
/// [`ServingEngine::step_events`] the moment the token is committed —
/// callers can forward pieces to clients without waiting for the request
/// to complete.
///
/// Concatenating the `piece` fields of a request's events reproduces the
/// collected [`RequestOutcome`] answer byte-for-byte (asserted by unit,
/// integration and property tests). A terminal event carries
/// `finish: Some(..)`; a request finishing without committing a token
/// (a zero-budget request, a terminal failure, or a
/// [`ServingEngine::cancel`] — whose terminal event is delivered at the
/// front of the next [`ServingEngine::step_events`] batch) emits one event
/// with `token: None` and an empty piece. Every submitted request's event
/// stream therefore closes with exactly one `finish`, which is what lets a
/// streaming server multiplex `step_events` to per-client connections
/// without polling request states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenEvent {
    /// The request the token belongs to.
    pub id: RequestId,
    /// The engine clock (step number) at which the token was committed.
    pub step: usize,
    /// Zero-based index of this token within the request's generation.
    pub index: usize,
    /// The committed token id (`None` for a token-less terminal event).
    pub token: Option<u32>,
    /// The decoded text piece this token contributes to the answer.
    pub piece: String,
    /// Set on the request's final event.
    pub finish: Option<FinishReason>,
}

/// Per-request serving statistics, serializable into `results/*.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingStats {
    /// The request id.
    pub id: RequestId,
    /// Number of context tokens.
    pub context_tokens: usize,
    /// Number of query tokens.
    pub query_tokens: usize,
    /// The generation budget.
    pub max_new_tokens: usize,
    /// Tokens actually generated.
    pub generated_tokens: usize,
    /// Compressed KV-cache bytes measured right after the policy ran.
    pub cache_bytes: usize,
    /// KV-cache bytes the same request would need at FP16.
    pub fp16_cache_bytes: usize,
    /// Bytes reserved up front for the FP16 decode tail.
    pub reserved_tail_bytes: usize,
    /// Prompt tokens whose KV was reused from the shared prefix cache
    /// instead of being re-prefilled (0 for a cold prefill).
    pub prefix_reused_tokens: usize,
    /// Engine step at which the request was submitted.
    pub submitted_step: usize,
    /// Engine step at which the scheduler admitted it (None while queued).
    pub admitted_step: Option<usize>,
    /// Engine step at which its first token was streamed (None until
    /// then) — per-request TTFT in steps, observable without wall-clock
    /// timing.
    pub first_token_step: Option<usize>,
    /// Engine step at which it completed, failed or was cancelled (None
    /// while in flight).
    pub finished_step: Option<usize>,
    /// Whether the client cancelled the request mid-flight.
    pub cancelled: bool,
    /// Wall-clock phase timings.
    pub timings: PipelineTimings,
}

/// Everything a completed request produced.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The request id.
    pub id: RequestId,
    /// The pipeline outcome (answer, tokens, policy report, plan, bytes,
    /// timings) — identical to what [`CocktailPipeline::run`] returns for
    /// the same request.
    ///
    /// [`CocktailPipeline::run`]: crate::CocktailPipeline::run
    pub outcome: CocktailOutcome,
    /// Scheduling statistics.
    pub stats: ServingStats,
}

/// What one generation round asks of the engine.
enum RoundAction {
    /// The request finished this round for the given reason.
    Finished(FinishReason),
    /// The request needs one decode step for `token` at `pos`.
    Decode { token: u32, pos: usize },
}

/// What [`RequestTask::begin_round`] produced: the token (and its decoded
/// text piece) committed this round, if any, plus what to do next.
struct RoundStart {
    committed: Option<(u32, String)>,
    action: RoundAction,
}

/// The per-request state machine shared by the single-request pipeline and
/// the batched serving engine: a prefilled, policy-compressed cache plus the
/// greedy-decoding cursor and the incrementally streamed answer text.
pub(crate) struct RequestTask {
    prompt_len: usize,
    context_tokens: usize,
    query_tokens: usize,
    /// Interned-vocabulary size right after this request's prompt was
    /// encoded: decoding against this horizon makes the rendered answer
    /// independent of which other requests share the engine's tokenizer.
    vocab_horizon: usize,
    max_new_tokens: usize,
    cache: ChunkedKvCache,
    generated: Vec<u32>,
    /// The answer text streamed so far: the concatenation of every
    /// committed token's piece, byte-identical to decoding `generated`
    /// wholesale against the vocab horizon.
    streamed: String,
    /// Stop sequences that end generation early when they appear in
    /// `streamed`.
    stop_sequences: Vec<String>,
    next_token: u32,
    /// The per-request sampling chain, when the request asked for one.
    /// `None` decodes greedily (the engine's argmax). The chain's ChaCha
    /// stream is seeded from the request's own [`SamplingParams::seed`],
    /// never from engine state, so replays are placement-independent.
    sampler: Option<SamplerChain>,
    /// The lease of the prefix-cache hit this request resumed from, held
    /// for the task's lifetime: it pins every trie node along the matched
    /// path, so LRU eviction prefers nodes no in-flight request is using.
    /// Only the lease is kept — the hit's assembled KV rows were already
    /// copied into this task's cache during prefill, so holding them too
    /// would duplicate the prefix per warm request. Dropped — unpinning
    /// the path — when the task completes, is cancelled, or the engine
    /// needs the memory (the pins are advisory: eviction is always safe).
    prefix: Option<PrefixLease>,
    report: PolicyReport,
    plan: Option<BitwidthPlan>,
    cache_bytes: usize,
    fp16_cache_bytes: usize,
    timings: PipelineTimings,
}

/// The encoded prompt of one request, with the tokenizer's interning
/// horizon captured right after encoding (see [`RequestTask`]).
pub(crate) struct EncodedPrompt {
    context_tokens: Vec<u32>,
    query_tokens: Vec<u32>,
    prompt: Vec<u32>,
    vocab_horizon: usize,
}

impl EncodedPrompt {
    /// Tokenizes and validates one request's context and query.
    fn encode(engine: &InferenceEngine, context: &str, query: &str) -> Result<Self, CocktailError> {
        let tokenizer = engine.tokenizer();
        let context_tokens = tokenizer.encode(context);
        let query_tokens = tokenizer.encode(query);
        let vocab_horizon = tokenizer.interned_words();
        if context_tokens.is_empty() || query_tokens.is_empty() {
            return Err(CocktailError::InvalidInput(
                "context and query must both be non-empty".into(),
            ));
        }
        let mut prompt = context_tokens.clone();
        prompt.extend_from_slice(&query_tokens);
        let max_context = engine.config().max_context;
        if prompt.len() > max_context {
            return Err(CocktailError::InvalidInput(format!(
                "prompt of {} tokens exceeds max context {max_context}",
                prompt.len()
            )));
        }
        Ok(Self {
            context_tokens,
            query_tokens,
            prompt,
            vocab_horizon,
        })
    }
}

impl RequestTask {
    /// Tokenizes, prefills and compresses one request — the exact
    /// pre-decode half of the original `CocktailPipeline::run_with_policy`,
    /// as a cold batch of one.
    pub(crate) fn prepare(
        engine: &InferenceEngine,
        config: &CocktailConfig,
        context: &str,
        query: &str,
        policy: &dyn CachePolicy,
        max_new_tokens: usize,
    ) -> Result<Self, CocktailError> {
        let encoded = EncodedPrompt::encode(engine, context, query)?;
        let start = Instant::now();
        let prefill = engine
            .prefill_batch(&[PrefillSlot::cold(&encoded.prompt)])?
            .pop()
            .expect("batch of one yields one prefill");
        let prefill_us = start.elapsed().as_micros() as u64;
        let (task, _) = Self::from_parts(
            engine,
            config,
            context,
            query,
            policy,
            max_new_tokens,
            Vec::new(),
            None,
            &encoded,
            None,
            &prefill,
            prefill_us,
            false,
        )?;
        Ok(task)
    }

    /// Builds the task from an already-encoded prompt and its prefill
    /// output (which may come from a batched and/or prefix-reusing
    /// prefill). When `want_prefix_blocks` is set, the raw full-context KV
    /// assembled for the chunked cache is also returned as shareable
    /// prefix blocks, so the caller can publish them to a prefix cache
    /// without re-deriving them.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        engine: &InferenceEngine,
        config: &CocktailConfig,
        context: &str,
        query: &str,
        policy: &dyn CachePolicy,
        max_new_tokens: usize,
        stop_sequences: Vec<String>,
        sampling: Option<SamplingParams>,
        encoded: &EncodedPrompt,
        prefix: Option<&PrefixHit>,
        prefill: &BatchPrefill,
        prefill_us: u64,
        want_prefix_blocks: bool,
    ) -> Result<(Self, Option<SharedPrefixKv>), CocktailError> {
        let chunk_texts = chunking::chunk_words(context, config.chunk_size);

        let compress_start = Instant::now();
        let (mut cache, prefix_blocks) = build_context_cache(
            engine,
            config,
            prefix.map(|hit| (hit.kv(), hit.tokens())),
            prefill,
            encoded.context_tokens.len(),
            want_prefix_blocks,
        )?;
        let fp16_cache_bytes = cache.total_fp16_reference_bytes();
        let ctx = PolicyContext::new(chunk_texts.clone(), query);
        let report = policy.apply(&mut cache, &ctx)?;
        let compress_us = compress_start.elapsed().as_micros() as u64;
        let cache_bytes = cache.total_storage_bytes();

        let plan = if policy.name() == "Cocktail" && config.enable_search {
            let cocktail = CocktailPolicy::new(config.clone())?;
            Some(
                cocktail
                    .plan_for(&ctx, chunk_texts.len())
                    .map_err(|e| CocktailError::Substrate(e.to_string()))?,
            )
        } else {
            None
        };

        // The sampler sees the same logits the greedy path argmaxes over;
        // it replaces the *selection* only, so attaching a chain perturbs
        // no logits arithmetic and the greedy path stays byte-identical.
        let mut sampler = sampling.map(SamplerChain::new);
        let first_token = match sampler.as_mut() {
            Some(chain) => chain.sample(&prefill.last_logits, &[]),
            None => prefill.next_token(),
        };
        let task = Self {
            prompt_len: encoded.prompt.len(),
            context_tokens: encoded.context_tokens.len(),
            query_tokens: encoded.query_tokens.len(),
            vocab_horizon: encoded.vocab_horizon,
            max_new_tokens,
            cache,
            generated: Vec::with_capacity(max_new_tokens),
            streamed: String::new(),
            stop_sequences: stop_sequences
                .into_iter()
                .filter(|s| !s.is_empty())
                .collect(),
            next_token: first_token,
            sampler,
            prefix: prefix.map(PrefixHit::lease),
            report,
            plan,
            cache_bytes,
            fp16_cache_bytes,
            timings: PipelineTimings {
                prefill_us,
                compress_us,
                decode_us: 0,
            },
        };
        Ok((task, prefix_blocks))
    }

    /// Renders the text piece one committed token contributes to the
    /// streamed answer: the token decoded against this request's own
    /// vocabulary horizon, preceded by the word separator for every token
    /// after the first — so concatenating the pieces reproduces the
    /// wholesale decode of the generated sequence byte-for-byte.
    fn render_piece(&self, engine: &InferenceEngine, token: u32) -> String {
        let word = engine
            .tokenizer()
            .decode_with_horizon(&[token], self.vocab_horizon);
        if self.generated.len() <= 1 {
            word
        } else {
            format!(" {word}")
        }
    }

    /// Commits the pending token (rendering its streamed piece) and reports
    /// what this round needs: the request finished — budget exhausted or a
    /// stop sequence hit — or one decode step. Mirrors one iteration of the
    /// sequential greedy-decoding loop, so batched and sequential serving
    /// walk identical token sequences.
    fn begin_round(&mut self, engine: &InferenceEngine) -> RoundStart {
        if self.generated.len() >= self.max_new_tokens {
            return RoundStart {
                committed: None,
                action: RoundAction::Finished(FinishReason::Length),
            };
        }
        let token = self.next_token;
        self.generated.push(token);
        let piece = self.render_piece(engine, token);
        self.streamed.push_str(&piece);
        // A new match must overlap the just-appended piece, so only the
        // tail window of the streamed text needs scanning — keeping the
        // per-token cost independent of how much has been generated.
        if self.stop_sequences.iter().any(|stop| {
            let mut start = self.streamed.len().saturating_sub(piece.len() + stop.len());
            while !self.streamed.is_char_boundary(start) {
                start -= 1;
            }
            self.streamed[start..].contains(stop.as_str())
        }) {
            return RoundStart {
                committed: Some((token, piece)),
                action: RoundAction::Finished(FinishReason::Stop),
            };
        }
        if self.generated.len() == self.max_new_tokens {
            return RoundStart {
                committed: Some((token, piece)),
                action: RoundAction::Finished(FinishReason::Length),
            };
        }
        RoundStart {
            committed: Some((token, piece)),
            action: RoundAction::Decode {
                token,
                pos: self.prompt_len + self.generated.len() - 1,
            },
        }
    }

    /// Stores the decode result of this round: the engine's greedy pick,
    /// or — when the request carries a sampler — a fresh draw over the
    /// same logits, with the tokens generated so far as penalty history.
    fn finish_round(&mut self, step: DecodeStep) {
        self.next_token = match self.sampler.as_mut() {
            Some(chain) => chain.sample(&step.logits, &self.generated),
            None => step.next_token,
        };
    }

    /// Drops the shared-prefix pin (if any); returns whether one was held.
    fn release_prefix(&mut self) -> bool {
        self.prefix.take().is_some()
    }

    /// Runs one sequential generation round; returns `true` once complete.
    pub(crate) fn generate_next(
        &mut self,
        engine: &InferenceEngine,
    ) -> Result<bool, CocktailError> {
        match self.begin_round(engine).action {
            RoundAction::Finished(_) => Ok(true),
            RoundAction::Decode { token, pos } => {
                let step = engine.decode_step(token, pos, &mut self.cache)?;
                self.finish_round(step);
                Ok(false)
            }
        }
    }

    /// Adds decode wall-clock time to the timings.
    pub(crate) fn add_decode_us(&mut self, micros: u64) {
        self.timings.decode_us += micros;
    }

    /// Compressed cache footprint measured after the policy ran.
    pub(crate) fn cache_bytes(&self) -> usize {
        self.cache_bytes
    }

    /// Converts the finished task into a pipeline outcome. The answer is
    /// the streamed text — each token rendered against the request's own
    /// vocabulary horizon the moment it was committed — which is
    /// byte-identical to decoding the whole generated sequence at once, so
    /// batched, streamed and sequential serving all produce the same text.
    pub(crate) fn into_outcome(self, engine: &InferenceEngine) -> CocktailOutcome {
        debug_assert_eq!(
            self.streamed,
            engine
                .tokenizer()
                .decode_with_horizon(&self.generated, self.vocab_horizon),
            "streamed pieces must reproduce the wholesale decode"
        );
        CocktailOutcome {
            answer: self.streamed,
            generated_tokens: self.generated,
            report: self.report,
            plan: self.plan,
            cache_bytes: self.cache_bytes,
            fp16_cache_bytes: self.fp16_cache_bytes,
            timings: self.timings,
        }
    }
}

/// Builds the chunked cache for a prompt whose first `context_len` tokens
/// are the context: the context portion is segmented into chunks while the
/// query tokens are appended to the FP16 tail (they are never quantized,
/// mirroring the paper's treatment of the query and of decode-phase
/// outputs).
///
/// When `prefix` is given, the first `reused` context rows are read from
/// the shared blocks (bit-identical to the rows a cold prefill would have
/// produced) and the prefill output only covers the computed suffix. When
/// `want_prefix_blocks` is set, the assembled full-context raw KV is also
/// returned as shareable blocks — built from the same matrices, so sharing
/// costs no extra pass over the data.
fn build_context_cache(
    engine: &InferenceEngine,
    config: &CocktailConfig,
    prefix: Option<(&SharedPrefixKv, usize)>,
    prefill: &BatchPrefill,
    context_len: usize,
    want_prefix_blocks: bool,
) -> Result<(ChunkedKvCache, Option<SharedPrefixKv>), CocktailError> {
    let model = engine.config();
    let seg = ChunkSegmentation::new(context_len, config.chunk_size)?;
    let reused = prefix.map_or(0, |(_, len)| len);
    debug_assert!(
        reused <= context_len,
        "prefix matches are made against context tokens only"
    );
    let mut cache = ChunkedKvCache::new(model.n_layers, model.n_kv_heads);
    let mut blocks =
        want_prefix_blocks.then(|| Vec::with_capacity(model.n_layers * model.n_kv_heads));
    for layer in 0..model.n_layers {
        for head in 0..model.n_kv_heads {
            let raw = &prefill.suffix_kv[layer][head];
            let (k_ctx, v_ctx) = match prefix {
                Some((shared, len)) if len > 0 => {
                    let block = shared.block(layer, head);
                    let pk = block.k().slice_rows(0, len);
                    let pv = block.v().slice_rows(0, len);
                    let sk = raw.k.slice_rows(0, context_len - len);
                    let sv = raw.v.slice_rows(0, context_len - len);
                    (
                        Matrix::concat_rows(&[&pk, &sk])?,
                        Matrix::concat_rows(&[&pv, &sv])?,
                    )
                }
                _ => (
                    raw.k.slice_rows(0, context_len),
                    raw.v.slice_rows(0, context_len),
                ),
            };
            let mut layer_cache = ChunkedLayerCache::from_prefill(&k_ctx, &v_ctx, &seg)?;
            // The suffix rows past the context are the query tokens.
            for row in (context_len - reused)..raw.k.rows() {
                layer_cache.append_decode_token(raw.k.row(row), raw.v.row(row))?;
            }
            cache.set(layer, head, layer_cache);
            if let Some(blocks) = &mut blocks {
                blocks.push(PrefixKvBlock::new(k_ctx, v_ctx)?);
            }
        }
    }
    let shared = match blocks {
        Some(b) => Some(SharedPrefixKv::from_blocks(
            model.n_layers,
            model.n_kv_heads,
            b,
        )?),
        None => None,
    };
    Ok((cache, shared))
}

/// Where a request currently is in the serving lifecycle.
enum Phase {
    /// Submitted, not yet prefilled.
    Queued(ServeRequest),
    /// Prefilled and compressed, waiting for the scheduler to admit it.
    Prepared(Box<RequestTask>),
    /// Admitted and decoding.
    Running(Box<RequestTask>),
    /// Finished successfully.
    Completed(Box<CocktailOutcome>),
    /// Terminally failed.
    Failed(String),
    /// Cancelled by the client; the task (cache, prefix pin) is dropped.
    Cancelled,
}

struct Slot {
    stats: ServingStats,
    phase: Phase,
}

/// The multi-request serving engine: continuous batching over one model.
///
/// # Example
///
/// ```
/// use cocktail_core::{CocktailConfig, ServeRequest, ServingEngine};
/// use cocktail_model::ModelProfile;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = CocktailConfig::default().with_chunk_size(8)?;
/// let mut engine = ServingEngine::new(ModelProfile::tiny(), config)?;
/// let context = "the cargo manifest lists forty crates of oranges. \
///                the access word for the customs office is bluebird.";
/// let a = engine.submit(ServeRequest::new(context, "what is the access word?", 6));
/// let b = engine.submit(ServeRequest::new(context, "what does the manifest list?", 6));
/// let outcomes = engine.run_until_idle()?;
/// assert_eq!(outcomes.len(), 2);
/// assert_eq!(outcomes[0].id, a);
/// assert_eq!(outcomes[1].id, b);
/// assert!(!outcomes[0].outcome.answer.is_empty());
/// # Ok(())
/// # }
/// ```
pub struct ServingEngine {
    engine: InferenceEngine,
    config: CocktailConfig,
    scheduler: BatchScheduler,
    prefix_cache: Option<PrefixCache>,
    slots: BTreeMap<RequestId, Slot>,
    /// Terminal events produced outside a decode round (cancellations),
    /// delivered at the front of the next [`ServingEngine::step_events`]
    /// batch so every request's event stream closes with a `finish`.
    pending_events: Vec<TokenEvent>,
    next_id: u64,
    clock: usize,
}

impl fmt::Debug for ServingEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServingEngine")
            .field("model", &self.engine.config().name)
            .field("queued", &self.scheduler.queued_len())
            .field("running", &self.scheduler.running_len())
            .field("kv_bytes_in_use", &self.scheduler.used_bytes())
            .field(
                "prefix_cache_entries",
                &self.prefix_cache.as_ref().map_or(0, PrefixCache::len),
            )
            .field("clock", &self.clock)
            .finish()
    }
}

/// One queued request taken out of its slot for a batched admission
/// prefill.
struct PrepCandidate {
    id: RequestId,
    context: String,
    query: String,
    policy: Box<dyn CachePolicy>,
    max_new_tokens: usize,
    stop_sequences: Vec<String>,
    prefix_reuse: bool,
    sampling: Option<SamplingParams>,
    encoded: EncodedPrompt,
    prefix: Option<PrefixHit>,
}

/// How one FIFO admission sweep over the queue head ended.
enum AdmitSweep {
    /// The queue is empty.
    Drained,
    /// The head is prepared but deferred (budget or batch cap).
    Deferred,
    /// The head has not been prefilled yet; another prepare pass is needed.
    NeedsPrepare,
}

/// What [`ServingEngine::snapshot_to`] wrote.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotReport {
    /// Size of the snapshot file in bytes.
    pub bytes: usize,
    /// Trie nodes captured (0 when the prefix cache is disabled or empty).
    pub nodes: usize,
}

/// How a [`ServingEngine::restore_from`] attempt ended.
///
/// Restoring never fails the engine: an unusable snapshot (truncated,
/// corrupted, wrong config fingerprint, diverging tokenizer vocabulary)
/// degrades to a clean cold start, reported through `restored == false`
/// and a human-readable `reason`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RestoreReport {
    /// Whether the snapshot was loaded into the prefix cache.
    pub restored: bool,
    /// Trie nodes resident after the restore (post budget eviction).
    pub nodes: usize,
    /// Prefix-cache bytes resident after the restore.
    pub resident_bytes: usize,
    /// Why the restore degraded to a cold start, when it did.
    pub reason: Option<String>,
}

/// FNV-1a over `bytes` — the same hash the snapshot checksum uses, applied
/// here to the engine's configuration descriptor.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl ServingEngine {
    /// Builds a serving engine for a model profile with an unlimited
    /// scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError`] if the profile or configuration is
    /// invalid.
    pub fn new(profile: ModelProfile, config: CocktailConfig) -> Result<Self, CocktailError> {
        let engine = InferenceEngine::new(profile)?;
        Self::with_engine(engine, config)
    }

    /// Builds a serving engine around an existing inference engine.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn with_engine(
        engine: InferenceEngine,
        config: CocktailConfig,
    ) -> Result<Self, CocktailError> {
        config.validate()?;
        Ok(Self {
            engine,
            config,
            scheduler: BatchScheduler::new(SchedulerConfig::default()),
            prefix_cache: None,
            slots: BTreeMap::new(),
            pending_events: Vec::new(),
            next_id: 0,
            clock: 0,
        })
    }

    /// Replaces the scheduler configuration (budget and batch cap).
    ///
    /// # Panics
    ///
    /// Panics if any request has already been submitted: replacing the
    /// scheduler would silently drop its queue and budget accounting, so
    /// the configuration must be chosen before traffic arrives.
    pub fn with_scheduler_config(mut self, scheduler: SchedulerConfig) -> Self {
        assert!(
            self.slots.is_empty() && self.scheduler.is_idle(),
            "scheduler configuration must be set before submitting requests"
        );
        self.scheduler = BatchScheduler::new(scheduler);
        self
    }

    /// Enables shared-prefix KV reuse through the token-trie
    /// [`PrefixCache`]: requests whose context opens with previously
    /// served tokens resume from the cached trie path instead of
    /// re-prefilling it, and divergent branches over a common preamble
    /// store that preamble's blocks exactly once. Resident blocks are
    /// charged against the scheduler's KV budget per trie node, and budget
    /// pressure trims the tree leaf-ward (partial LRU eviction) rather
    /// than dropping whole contexts. Reuse is bit-exact — answers are
    /// byte-identical with the cache on or off.
    ///
    /// # Panics
    ///
    /// Panics if any request has already been submitted (the cache must be
    /// configured before traffic arrives, like the scheduler).
    pub fn with_prefix_cache(mut self, config: PrefixCacheConfig) -> Self {
        assert!(
            self.slots.is_empty() && self.scheduler.is_idle(),
            "the prefix cache must be configured before submitting requests"
        );
        self.prefix_cache = Some(PrefixCache::new(config));
        self
    }

    /// Enables the disk cold tier on the prefix cache (creating a
    /// default-configured cache first if none was enabled): evicted leaves
    /// are demoted to the spill file at `path` instead of dropped, and
    /// later lookups that miss RAM but hit the cold index repromote the
    /// branch under the existing KV budget. Records are stamped with this
    /// engine's configuration fingerprint, so a spill file can never leak
    /// KV across incompatible configurations.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError::Substrate`] if the spill file cannot be
    /// created.
    ///
    /// # Panics
    ///
    /// Panics if any request has already been submitted (like the
    /// scheduler and prefix-cache builders).
    pub fn with_cold_tier(mut self, path: impl Into<PathBuf>) -> Result<Self, CocktailError> {
        assert!(
            self.slots.is_empty() && self.scheduler.is_idle(),
            "the cold tier must be configured before submitting requests"
        );
        let fingerprint = self.config_fingerprint();
        let cache = self
            .prefix_cache
            .get_or_insert_with(|| PrefixCache::new(PrefixCacheConfig::default()));
        cache
            .enable_cold_tier(path, fingerprint)
            .map_err(|e| CocktailError::Substrate(e.to_string()))?;
        Ok(self)
    }

    /// Counters and occupancy of the prefix cache; `None` when disabled.
    pub fn prefix_cache_stats(&self) -> Option<PrefixCacheStats> {
        self.prefix_cache.as_ref().map(PrefixCache::stats)
    }

    /// Serializes the prefix cache (and the tokenizer interning order it
    /// depends on) into the flat snapshot format, stamped with this
    /// engine's configuration fingerprint. With the cache disabled or
    /// empty the snapshot is still valid — it restores to an empty trie.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let fingerprint = self.config_fingerprint();
        let vocab = self.engine.tokenizer().interned_vocab();
        let snapshot = match self.prefix_cache.as_ref() {
            Some(cache) => cache.to_snapshot(fingerprint, vocab),
            None => TrieSnapshot {
                fingerprint,
                layers: 1,
                kv_heads: 1,
                vocab,
                nodes: Vec::new(),
            },
        };
        write_snapshot(&snapshot)
    }

    /// Writes [`ServingEngine::snapshot_bytes`] to `path` so a restarted
    /// engine (or a fresh replica) can start warm via
    /// [`ServingEngine::restore_from`].
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError::Substrate`] if the file cannot be written.
    pub fn snapshot_to(&self, path: impl AsRef<Path>) -> Result<SnapshotReport, CocktailError> {
        let bytes = self.snapshot_bytes();
        std::fs::write(path, &bytes).map_err(|e| CocktailError::Substrate(e.to_string()))?;
        Ok(SnapshotReport {
            bytes: bytes.len(),
            nodes: self.prefix_cache.as_ref().map_or(0, PrefixCache::len),
        })
    }

    /// Loads a snapshot produced by [`ServingEngine::snapshot_bytes`] into
    /// the prefix cache (creating a default-configured cache first if none
    /// was enabled), replays the snapshot's tokenizer interning order, and
    /// re-charges the restored bytes against the KV budget — evicting
    /// leaf-first if the budget is tighter than it was at snapshot time.
    ///
    /// Restore is infallible by design: any unusable snapshot — truncated,
    /// corrupted, produced under a different model/quantization/seed
    /// configuration, or with a diverging tokenizer — leaves the engine
    /// exactly as it was (a clean cold start) and reports why.
    pub fn restore_from_bytes(&mut self, bytes: &[u8]) -> RestoreReport {
        let fail = |reason: String| RestoreReport {
            restored: false,
            nodes: 0,
            resident_bytes: 0,
            reason: Some(reason),
        };
        let snapshot = match read_snapshot(bytes) {
            Ok(snapshot) => snapshot,
            Err(e) => return fail(e.to_string()),
        };
        if let Err(e) = snapshot.expect_fingerprint(self.config_fingerprint()) {
            return fail(e.to_string());
        }
        if !self.engine.tokenizer().align_vocab(&snapshot.vocab) {
            return fail("tokenizer vocabulary diverges from the snapshot".to_string());
        }
        let cache = self
            .prefix_cache
            .get_or_insert_with(|| PrefixCache::new(PrefixCacheConfig::default()));
        if let Err(e) = cache.load_snapshot(snapshot) {
            return fail(e.to_string());
        }
        self.sync_shared_bytes();
        while !self.scheduler.would_fit_shared(0) {
            if !self.evict_shared_for_budget() {
                break;
            }
        }
        let cache = self.prefix_cache.as_ref().expect("cache enabled above");
        RestoreReport {
            restored: true,
            nodes: cache.len(),
            resident_bytes: cache.total_bytes(),
            reason: None,
        }
    }

    /// Reads a snapshot file and feeds it to
    /// [`ServingEngine::restore_from_bytes`]. A missing or unreadable file
    /// degrades to a cold start like any other unusable snapshot.
    pub fn restore_from(&mut self, path: impl AsRef<Path>) -> RestoreReport {
        match std::fs::read(path) {
            Ok(bytes) => self.restore_from_bytes(&bytes),
            Err(e) => RestoreReport {
                restored: false,
                nodes: 0,
                resident_bytes: 0,
                reason: Some(format!("read snapshot: {e}")),
            },
        }
    }

    /// Fingerprint of everything that must match for KV bytes to be
    /// portable: the Cocktail configuration, the model configuration, and
    /// the weight seed (different seed ⇒ different weights ⇒ incompatible
    /// KV). Stamped into snapshots and cold-tier records.
    fn config_fingerprint(&self) -> u64 {
        let descriptor = format!(
            "{:?}|{:?}|{}",
            self.config,
            self.engine.config(),
            self.engine.weight_seed()
        );
        fnv1a(descriptor.as_bytes())
    }

    /// The underlying inference engine.
    pub fn engine(&self) -> &InferenceEngine {
        &self.engine
    }

    /// The Cocktail configuration.
    pub fn config(&self) -> &CocktailConfig {
        &self.config
    }

    /// The scheduler (budget accounting, queue/batch occupancy).
    pub fn scheduler(&self) -> &BatchScheduler {
        &self.scheduler
    }

    /// KV-cache bytes currently charged against the memory budget.
    pub fn kv_bytes_in_use(&self) -> usize {
        self.scheduler.used_bytes()
    }

    /// Engine steps executed so far (the logical serving clock).
    pub fn clock(&self) -> usize {
        self.clock
    }

    /// Submits a request; it joins the scheduler queue and will be admitted
    /// by a later [`ServingEngine::step`].
    pub fn submit(&mut self, request: ServeRequest) -> RequestId {
        let id = RequestId::new(self.next_id);
        self.next_id += 1;
        let stats = ServingStats {
            id,
            context_tokens: 0,
            query_tokens: 0,
            max_new_tokens: request.max_new_tokens,
            generated_tokens: 0,
            cache_bytes: 0,
            fp16_cache_bytes: 0,
            reserved_tail_bytes: 0,
            prefix_reused_tokens: 0,
            submitted_step: self.clock,
            admitted_step: None,
            first_token_step: None,
            finished_step: None,
            cancelled: false,
            timings: PipelineTimings::default(),
        };
        self.slots.insert(
            id,
            Slot {
                stats,
                phase: Phase::Queued(request),
            },
        );
        self.scheduler.enqueue(id);
        id
    }

    /// Current lifecycle state of a request.
    pub fn state(&self, id: RequestId) -> Option<RequestState> {
        self.slots.get(&id).map(|slot| match slot.phase {
            Phase::Queued(_) | Phase::Prepared(_) => RequestState::Queued,
            Phase::Running(_) => RequestState::Running,
            Phase::Completed(_) => RequestState::Completed,
            Phase::Failed(_) => RequestState::Failed,
            Phase::Cancelled => RequestState::Cancelled,
        })
    }

    /// Serving statistics of a request (live; fields fill in as the request
    /// progresses).
    pub fn stats(&self, id: RequestId) -> Option<&ServingStats> {
        self.slots.get(&id).map(|slot| &slot.stats)
    }

    /// The failure message of a failed request.
    pub fn failure(&self, id: RequestId) -> Option<&str> {
        match &self.slots.get(&id)?.phase {
            Phase::Failed(message) => Some(message),
            _ => None,
        }
    }

    /// Removes and returns the outcome of a completed request.
    pub fn take_outcome(&mut self, id: RequestId) -> Option<RequestOutcome> {
        if !matches!(self.slots.get(&id)?.phase, Phase::Completed(_)) {
            return None;
        }
        let slot = self.slots.remove(&id)?;
        match slot.phase {
            Phase::Completed(outcome) => Some(RequestOutcome {
                id,
                outcome: *outcome,
                stats: slot.stats,
            }),
            _ => unreachable!("phase checked above"),
        }
    }

    /// Removes a failed request and returns its failure message and stats.
    ///
    /// Terminal slots are retained until collected so callers can inspect
    /// them; a long-running engine should drain failures with this method
    /// (as it drains completions with [`ServingEngine::take_outcome`]) to
    /// keep the slot table from growing without bound.
    pub fn take_failure(&mut self, id: RequestId) -> Option<(String, ServingStats)> {
        if !matches!(self.slots.get(&id)?.phase, Phase::Failed(_)) {
            return None;
        }
        let slot = self.slots.remove(&id)?;
        match slot.phase {
            Phase::Failed(message) => Some((message, slot.stats)),
            _ => unreachable!("phase checked above"),
        }
    }

    /// Removes a cancelled request and returns its stats (how many tokens
    /// it decoded before the client gave up, its phase timings, and so
    /// on). Like [`ServingEngine::take_failure`], draining cancelled slots
    /// keeps the slot table bounded on a long-running engine.
    pub fn take_cancelled(&mut self, id: RequestId) -> Option<ServingStats> {
        if !matches!(self.slots.get(&id)?.phase, Phase::Cancelled) {
            return None;
        }
        self.slots.remove(&id).map(|slot| slot.stats)
    }

    /// Cancels a request mid-flight — the serving-side handling of a
    /// client disconnect. Returns `true` if the request was still live
    /// (queued, prepared or running); a completed, failed or already
    /// cancelled request is left untouched and `false` is returned.
    ///
    /// Cancellation immediately releases everything the request held: a
    /// running request's KV bytes (and reserved decode tail) are released
    /// from the scheduler budget, a queued request leaves the admission
    /// queue, the compressed cache is dropped, and the request's
    /// shared-prefix pin is released so the prefix-cache entry becomes
    /// evictable again.
    ///
    /// **Isolation guarantee:** cancelling a request never perturbs any
    /// other request. Batched decode is row-wise independent (each request
    /// owns its cache and its row of the batch), so the surviving
    /// requests' remaining tokens — and therefore their final answers —
    /// are byte-identical to what they would produce with no cancellation
    /// at all, which in turn equals their own solo sequential pipeline
    /// runs. This is asserted by the cancellation property test.
    ///
    /// # Example
    ///
    /// ```
    /// use cocktail_core::{CocktailConfig, RequestState, ServeRequest, ServingEngine};
    /// use cocktail_model::ModelProfile;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let config = CocktailConfig::default().with_chunk_size(8)?;
    /// let mut engine = ServingEngine::new(ModelProfile::tiny(), config)?;
    /// let context = "the quartermaster records twelve barrels of fresh water aboard.";
    /// let id = engine.submit(ServeRequest::new(context, "how many barrels?", 16));
    /// engine.step()?; // admitted and decoding
    /// let before = engine.kv_bytes_in_use();
    /// assert!(engine.cancel(id), "a running request can be cancelled");
    /// assert!(engine.kv_bytes_in_use() < before, "its KV charge is released");
    /// assert_eq!(engine.state(id), Some(RequestState::Cancelled));
    /// assert!(!engine.cancel(id), "cancelling twice is a no-op");
    /// let stats = engine.take_cancelled(id).expect("cancelled stats");
    /// assert!(stats.cancelled);
    /// assert!(stats.generated_tokens < 16);
    /// # Ok(())
    /// # }
    /// ```
    pub fn cancel(&mut self, id: RequestId) -> bool {
        let now = self.clock;
        let Some(slot) = self.slots.get_mut(&id) else {
            return false;
        };
        match &slot.phase {
            Phase::Queued(_) | Phase::Prepared(_) => {
                self.scheduler.remove_queued(id);
            }
            Phase::Running(_) => {
                self.scheduler.complete(id);
            }
            Phase::Completed(_) | Phase::Failed(_) | Phase::Cancelled => return false,
        }
        slot.stats.cancelled = true;
        slot.stats.finished_step = Some(now);
        // Close the request's event stream: the terminal Cancelled event
        // is delivered at the front of the next step_events batch (a
        // streaming server multiplexing step_events to clients needs a
        // closing finish even when someone else — an admin timeout, a
        // tenant limit — did the cancelling).
        self.pending_events.push(TokenEvent {
            id,
            step: now,
            index: slot.stats.generated_tokens,
            token: None,
            piece: String::new(),
            finish: Some(FinishReason::Cancelled),
        });
        // Dropping the phase drops the task: its compressed cache and its
        // shared-prefix pin go with it.
        slot.phase = Phase::Cancelled;
        true
    }

    /// Returns `true` when no request is queued or running (nothing left
    /// for [`ServingEngine::step`] to do).
    pub fn is_idle(&self) -> bool {
        self.scheduler.is_idle()
    }

    /// Zero-based position of a queued request in the admission queue
    /// (`Some(0)` is the head, next to be admitted); `None` once the
    /// request is running, finished, or unknown. A gateway surfacing
    /// backpressure reports this to waiting clients instead of leaving
    /// them blind.
    pub fn queue_position(&self, id: RequestId) -> Option<usize> {
        self.scheduler.queued_ids().iter().position(|q| *q == id)
    }

    /// Marks a request terminally failed and closes its event stream: the
    /// token-less [`FinishReason::Failed`] terminal event is delivered at
    /// the front of the next [`ServingEngine::step_events`] batch, so
    /// stream consumers see failures exactly like every other finish.
    fn fail_request(&mut self, id: RequestId, now: usize, message: String) {
        let slot = self.slots.get_mut(&id).expect("failing request has a slot");
        slot.stats.finished_step = Some(now);
        let index = slot.stats.generated_tokens;
        slot.phase = Phase::Failed(message);
        self.pending_events.push(TokenEvent {
            id,
            step: now,
            index,
            token: None,
            piece: String::new(),
            finish: Some(FinishReason::Failed),
        });
    }

    /// Compressed KV bytes held by prepared-but-not-yet-admitted requests.
    /// These bytes are *not* part of [`ServingEngine::kv_bytes_in_use`]:
    /// the budget governs admitted requests (and resident prefix-cache
    /// blocks), while prepared caches are kept across deferrals so a
    /// prefill is never repeated. Up to
    /// [`SchedulerConfig::prefill_window`](crate::SchedulerConfig) requests
    /// can be prepared ahead of admission, so operators sizing real memory
    /// should add this headroom to the budget.
    pub fn prepared_kv_bytes(&self) -> usize {
        self.slots
            .values()
            .map(|slot| match &slot.phase {
                Phase::Prepared(task) => task.cache_bytes(),
                _ => 0,
            })
            .sum()
    }

    /// Runs one engine step: admit whatever fits from the queue head
    /// (prefilling newly admitted requests), then one decode round in which
    /// every running request generates one token via a single batched
    /// decode call. Returns the ids of requests that finished this step.
    ///
    /// This is the collect-only wrapper over
    /// [`ServingEngine::step_events`], which additionally streams every
    /// committed token.
    ///
    /// Note that the queue head is prepared (prefilled + compressed) before
    /// its budget check, so up to one deferred request's compressed cache
    /// can be resident beyond the budget — see
    /// [`ServingEngine::prepared_kv_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError`] only for engine-level failures; a request
    /// that cannot be served (invalid input, oversized for the budget)
    /// transitions to [`RequestState::Failed`] instead of poisoning the
    /// engine.
    pub fn step(&mut self) -> Result<Vec<RequestId>, CocktailError> {
        Ok(self
            .step_events()?
            .into_iter()
            .filter(|event| event.finish.is_some())
            .map(|event| event.id)
            .collect())
    }

    /// Runs one engine step and streams it: every token committed this
    /// step is returned as a [`TokenEvent`] (in running-batch order), with
    /// `finish` set on each request's final event. Callers forward the
    /// pieces to clients as they arrive; concatenating a request's pieces
    /// reproduces its collected [`RequestOutcome`] answer byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError`] only for engine-level failures, exactly
    /// like [`ServingEngine::step`].
    pub fn step_events(&mut self) -> Result<Vec<TokenEvent>, CocktailError> {
        self.clock += 1;
        let now = self.clock;
        self.admit(now)?;
        let mut events = std::mem::take(&mut self.pending_events);
        events.extend(self.decode_round(now)?);
        Ok(events)
    }

    /// FIFO admission with batched prefill: prefill up to a window of
    /// queued requests in one pass, then admit prepared heads until one no
    /// longer fits, repeating while the queue keeps yielding unprepared
    /// heads.
    fn admit(&mut self, now: usize) -> Result<(), CocktailError> {
        loop {
            self.prepare_window(now)?;
            if !matches!(self.admit_prepared(now), AdmitSweep::NeedsPrepare) {
                return Ok(());
            }
        }
    }

    /// Takes up to `prefill_window` queued requests from the front of the
    /// queue, encodes them in queue order (so tokenizer interning — and
    /// every request's vocabulary horizon — matches what sequential serving
    /// would produce), and prefills them through at most two batched
    /// passes: first the requests with no reusable prefix, then — once the
    /// cold pass has published its contexts to the prefix cache — the
    /// requests that can resume from a cached prefix. The two-pass split is
    /// what lets simultaneously arriving requests with a common context
    /// share its prefill within a single engine step.
    fn prepare_window(&mut self, now: usize) -> Result<(), CocktailError> {
        let window = self.scheduler.config().prefill_window;
        let ids: Vec<RequestId> = self
            .scheduler
            .queued_ids()
            .into_iter()
            .take(window)
            .filter(|id| {
                self.slots
                    .get(id)
                    .is_some_and(|slot| matches!(slot.phase, Phase::Queued(_)))
            })
            .collect();
        if ids.is_empty() {
            return Ok(());
        }

        let mut candidates: Vec<PrepCandidate> = Vec::with_capacity(ids.len());
        for id in ids {
            let phase = {
                let slot = self.slots.get_mut(&id).expect("queued request has a slot");
                std::mem::replace(&mut slot.phase, Phase::Failed("preparing".into()))
            };
            let Phase::Queued(request) = phase else {
                unreachable!("window contains queued phases only");
            };
            let policy: Box<dyn CachePolicy> = match request.policy {
                Some(policy) => policy,
                None => Box::new(CocktailPolicy::new(self.config.clone())?),
            };
            match EncodedPrompt::encode(&self.engine, &request.context, &request.query) {
                Ok(encoded) => candidates.push(PrepCandidate {
                    id,
                    context: request.context,
                    query: request.query,
                    policy,
                    max_new_tokens: request.max_new_tokens,
                    stop_sequences: request.stop_sequences,
                    prefix_reuse: request.prefix_reuse,
                    sampling: request.sampling,
                    encoded,
                    prefix: None,
                }),
                Err(err) => self.fail_request(id, now, err.to_string()),
            }
        }

        // Cold-tier repromotion happens before classification: a candidate
        // whose context misses the RAM trie but matches the cold index
        // promotes the spilled branch back under the KV budget now, so it
        // prefills as warm in this very step instead of going cold once
        // and re-publishing what the disk already holds.
        if self
            .prefix_cache
            .as_ref()
            .is_some_and(PrefixCache::cold_tier_enabled)
        {
            let contexts: Vec<Vec<u32>> = candidates
                .iter()
                .filter(|cand| cand.prefix_reuse)
                .map(|cand| cand.encoded.context_tokens.clone())
                .collect();
            for tokens in contexts {
                self.try_repromote(&tokens);
            }
        }

        // Classification uses stats-free probes; the warm pass below does
        // the one real (hit/miss-counted, LRU-touching) lookup per warm
        // candidate, after the cold pass has published its contexts — so a
        // candidate that would only match a short stale entry now still
        // picks up the longer prefix a cold batchmate just prefilled.
        let min_prefix = self
            .prefix_cache
            .as_ref()
            .map(|cache| cache.config().min_prefix_tokens);
        let mut cold: Vec<PrepCandidate> = Vec::new();
        let mut warm: Vec<PrepCandidate> = Vec::new();
        for cand in candidates {
            match min_prefix {
                // A request that opted out of prefix reuse always prefills
                // cold and never reads the trie (no counted miss either —
                // it never asked the cache for anything).
                _ if !cand.prefix_reuse => cold.push(cand),
                None => cold.push(cand),
                Some(min) => {
                    let cached = self.prefix_cache.as_ref().map_or(0, |cache| {
                        cache.peek_prefix_len(&cand.encoded.context_tokens)
                    });
                    // Only reuse-enabled batchmates publish their contexts,
                    // so only they can warm a same-prefix candidate.
                    let shares_cold_batchmate =
                        cold.iter().filter(|o| o.prefix_reuse).any(|other| {
                            common_prefix_len(
                                &other.encoded.context_tokens,
                                &cand.encoded.context_tokens,
                            ) >= min
                        });
                    if cached >= min || shares_cold_batchmate {
                        warm.push(cand);
                    } else {
                        // Record the miss through the counted lookup path.
                        if let Some(cache) = self.prefix_cache.as_mut() {
                            let _missed = cache.lookup(&cand.encoded.context_tokens);
                            debug_assert!(_missed.is_none(), "peek and lookup disagree");
                        }
                        cold.push(cand);
                    }
                }
            }
        }

        self.prefill_candidates(cold, now)?;
        for cand in &mut warm {
            cand.prefix = self
                .prefix_cache
                .as_mut()
                .and_then(|cache| cache.lookup(&cand.encoded.context_tokens));
        }
        self.prefill_candidates(warm, now)
    }

    /// Prefills one batch of candidates through a single
    /// `InferenceEngine::prefill_batch` call, builds their compressed
    /// caches, and publishes shareable context blocks to the prefix cache.
    fn prefill_candidates(
        &mut self,
        candidates: Vec<PrepCandidate>,
        now: usize,
    ) -> Result<(), CocktailError> {
        if candidates.is_empty() {
            return Ok(());
        }
        let outputs = {
            let slots: Vec<PrefillSlot<'_>> = candidates
                .iter()
                .map(|cand| match &cand.prefix {
                    Some(hit) => {
                        PrefillSlot::with_prefix(&cand.encoded.prompt, hit.kv(), hit.tokens())
                    }
                    None => PrefillSlot::cold(&cand.encoded.prompt),
                })
                .collect();
            let start = Instant::now();
            let outputs = self.engine.prefill_batch(&slots)?;
            (outputs, start.elapsed().as_micros() as u64)
        };
        let (outputs, elapsed_us) = outputs;

        // Attribute the batch wall time per request in proportion to its
        // share of the attention work (computed suffix rows x full prompt
        // length), the quadratic part batching does not amortize.
        let weights: Vec<u128> = candidates
            .iter()
            .map(|cand| {
                let reused = cand.prefix.as_ref().map_or(0, PrefixHit::tokens);
                ((cand.encoded.prompt.len() - reused) * cand.encoded.prompt.len()) as u128
            })
            .collect();
        let total_weight: u128 = weights.iter().sum::<u128>().max(1);

        for ((cand, output), weight) in candidates.into_iter().zip(outputs).zip(weights) {
            let prefill_us = ((u128::from(elapsed_us) * weight) / total_weight) as u64;
            let reused = cand.prefix.as_ref().map_or(0, PrefixHit::tokens);
            let want_blocks = match &self.prefix_cache {
                Some(cache) => {
                    cand.prefix_reuse
                        && cand.encoded.context_tokens.len() >= cache.config().min_prefix_tokens
                        && !cache.covers(&cand.encoded.context_tokens)
                }
                None => false,
            };
            let prepared = RequestTask::from_parts(
                &self.engine,
                &self.config,
                &cand.context,
                &cand.query,
                cand.policy.as_ref(),
                cand.max_new_tokens,
                cand.stop_sequences,
                cand.sampling,
                &cand.encoded,
                cand.prefix.as_ref(),
                &output,
                prefill_us,
                want_blocks,
            );
            let mut publish: Option<(Vec<u32>, SharedPrefixKv)> = None;
            let mut failure: Option<String> = None;
            {
                let slot = self
                    .slots
                    .get_mut(&cand.id)
                    .expect("prepared request has a slot");
                match prepared {
                    Ok((task, blocks)) => {
                        slot.stats.context_tokens = task.context_tokens;
                        slot.stats.query_tokens = task.query_tokens;
                        slot.stats.cache_bytes = task.cache_bytes;
                        slot.stats.fp16_cache_bytes = task.fp16_cache_bytes;
                        slot.stats.prefix_reused_tokens = reused;
                        slot.stats.timings = task.timings;
                        slot.phase = Phase::Prepared(Box::new(task));
                        if let Some(blocks) = blocks {
                            publish = Some((cand.encoded.context_tokens, blocks));
                        }
                    }
                    Err(err) => failure = Some(err.to_string()),
                }
            }
            if let Some(message) = failure {
                self.fail_request(cand.id, now, message);
            }
            if let Some((tokens, blocks)) = publish {
                self.insert_prefix_entry(tokens, blocks);
            }
        }
        Ok(())
    }

    /// Charges one context's blocks against the budget and inserts them
    /// into the prefix cache, evicting LRU unpinned trie leaves while the
    /// budget is tight. The trie stores only the *uncovered suffix* of the
    /// context (covered runs are already resident and already charged), so
    /// the budget pre-check charges that delta, not the full context —
    /// under pressure a branch whose preamble is cached needs room for its
    /// tail only. Eviction can shrink the covered part, so the delta is
    /// recomputed after every eviction. If even a fully drained cache
    /// cannot make room the blocks are simply not cached — correctness
    /// never depends on them.
    fn insert_prefix_entry(&mut self, tokens: Vec<u32>, blocks: SharedPrefixKv) {
        if self.prefix_cache.is_none() || tokens.is_empty() {
            return;
        }
        let bytes_per_token = blocks.storage_bytes() / tokens.len();
        loop {
            let covered = self
                .prefix_cache
                .as_ref()
                .map_or(0, |cache| cache.peek_prefix_len(&tokens));
            let delta = (tokens.len() - covered.min(tokens.len())) * bytes_per_token;
            if self.scheduler.would_fit_shared(delta) {
                break;
            }
            if !self.evict_shared_for_budget() {
                return;
            }
        }
        if let Some(cache) = self.prefix_cache.as_mut() {
            cache.insert(tokens, blocks);
        }
        self.sync_shared_bytes();
    }

    /// Evicts one LRU unpinned prefix entry and re-syncs the budget charge;
    /// `false` when nothing evictable remains.
    ///
    /// In-flight tasks pin the entries they resumed from, which steers LRU
    /// eviction away from hot prefixes — but those pins are advisory
    /// (prefix rows are *copied* into each request's cache, so eviction
    /// never breaks a request). When every resident entry is pinned and
    /// the budget still needs room, the engine therefore releases the task
    /// pins and retries rather than stalling admission: running requests
    /// take precedence over cached prefixes, always.
    fn evict_shared_for_budget(&mut self) -> bool {
        let evict = |cache: &mut Option<PrefixCache>| {
            cache
                .as_mut()
                .is_some_and(|cache| cache.evict_lru_unpinned().is_some())
        };
        let mut evicted = evict(&mut self.prefix_cache);
        if !evicted {
            let mut released = false;
            for slot in self.slots.values_mut() {
                if let Phase::Prepared(task) | Phase::Running(task) = &mut slot.phase {
                    released |= task.release_prefix();
                }
            }
            if released {
                evicted = evict(&mut self.prefix_cache);
            }
        }
        if evicted {
            self.sync_shared_bytes();
        }
        evicted
    }

    /// Reports the prefix cache's resident footprint to the scheduler.
    fn sync_shared_bytes(&mut self) {
        let bytes = self
            .prefix_cache
            .as_ref()
            .map_or(0, PrefixCache::total_bytes);
        self.scheduler.set_shared_bytes(bytes);
    }

    /// Repromotes a cold-tier branch covering `tokens` back into RAM when
    /// it would extend the resident match, evicting colder leaves first if
    /// the KV budget demands it. Silent when the cold tier is disabled,
    /// misses, or loses the budget fight — the request then prefills the
    /// uncovered tail like any other partial hit.
    fn try_repromote(&mut self, tokens: &[u32]) {
        let Some(cache) = self.prefix_cache.as_ref() else {
            return;
        };
        let resident = cache.peek_prefix_len(tokens);
        let Some((cold_len, est_bytes)) = cache.cold_match(tokens) else {
            return;
        };
        if cold_len <= resident {
            return;
        }
        while !self.scheduler.would_fit_shared(est_bytes) {
            if !self.evict_shared_for_budget() {
                return;
            }
        }
        if let Some(cache) = self.prefix_cache.as_mut() {
            cache.repromote(tokens);
        }
        self.sync_shared_bytes();
    }

    /// One FIFO sweep over the queue head: admit prepared requests until
    /// the queue drains, a request defers, or an unprepared head asks for
    /// another batched prefill pass. When the budget defers the head,
    /// unpinned prefix-cache entries are evicted LRU and admission is
    /// retried — running requests take precedence over cached prefixes.
    fn admit_prepared(&mut self, now: usize) -> AdmitSweep {
        enum HeadKind {
            Queued,
            Failed,
            Prepared { cost: usize, reserved: usize },
        }
        while let Some(head) = self.scheduler.head() {
            let kind = {
                let slot = self.slots.get(&head).expect("queued request has a slot");
                match &slot.phase {
                    Phase::Queued(_) => HeadKind::Queued,
                    Phase::Failed(_) => HeadKind::Failed,
                    Phase::Prepared(task) => {
                        let tail_tokens = task.max_new_tokens.saturating_sub(1);
                        let reserved = tail_tokens * self.engine.config().kv_bytes_per_token_fp16();
                        HeadKind::Prepared {
                            cost: task.cache_bytes() + reserved,
                            reserved,
                        }
                    }
                    Phase::Running(_) | Phase::Completed(_) | Phase::Cancelled => {
                        unreachable!("queued requests are not running, completed or cancelled")
                    }
                }
            };
            match kind {
                HeadKind::Queued => return AdmitSweep::NeedsPrepare,
                HeadKind::Failed => self.scheduler.drop_head(head),
                HeadKind::Prepared { cost, reserved } => {
                    match self.scheduler.try_admit(head, cost) {
                        AdmitDecision::Admitted => {
                            let slot = self.slots.get_mut(&head).expect("slot still present");
                            slot.stats.reserved_tail_bytes = reserved;
                            slot.stats.admitted_step = Some(now);
                            let phase =
                                std::mem::replace(&mut slot.phase, Phase::Failed(String::new()));
                            let Phase::Prepared(task) = phase else {
                                unreachable!("phase checked above");
                            };
                            slot.phase = Phase::Running(task);
                        }
                        AdmitDecision::Rejected => {
                            let budget = self
                                .scheduler
                                .config()
                                .kv_budget_bytes
                                .expect("rejection implies a finite budget");
                            self.fail_request(
                                head,
                                now,
                                format!("request needs {cost} KV bytes but the budget is {budget}"),
                            );
                        }
                        AdmitDecision::DeferredBudget => {
                            if !self.evict_shared_for_budget() {
                                return AdmitSweep::Deferred;
                            }
                        }
                        AdmitDecision::DeferredBatch => return AdmitSweep::Deferred,
                    }
                }
            }
        }
        AdmitSweep::Drained
    }

    /// One decode round: every running request commits its pending token
    /// (streaming it as a [`TokenEvent`]) and, unless finished — budget
    /// exhausted or a stop sequence hit — takes one batched decode step.
    fn decode_round(&mut self, now: usize) -> Result<Vec<TokenEvent>, CocktailError> {
        let running = self.scheduler.running();
        let mut events = Vec::new();
        let mut finished = Vec::new();
        let mut decoding = Vec::new();
        for id in running {
            let slot = self.slots.get_mut(&id).expect("running request has a slot");
            let Phase::Running(task) = &mut slot.phase else {
                unreachable!("scheduler and slots agree on running requests");
            };
            let round = task.begin_round(&self.engine);
            let finish = match round.action {
                RoundAction::Finished(reason) => Some(reason),
                RoundAction::Decode { .. } => None,
            };
            match round.committed {
                Some((token, piece)) => {
                    if slot.stats.first_token_step.is_none() {
                        slot.stats.first_token_step = Some(now);
                    }
                    slot.stats.generated_tokens = task.generated.len();
                    events.push(TokenEvent {
                        id,
                        step: now,
                        index: task.generated.len() - 1,
                        token: Some(token),
                        piece,
                        finish,
                    });
                }
                // A finish with no token this round (zero-budget request):
                // emit a token-less terminal event so streams still close.
                None => events.push(TokenEvent {
                    id,
                    step: now,
                    index: task.generated.len(),
                    token: None,
                    piece: String::new(),
                    finish,
                }),
            }
            match round.action {
                RoundAction::Finished(_) => finished.push(id),
                RoundAction::Decode { token, pos } => decoding.push((id, token, pos)),
            }
        }

        if !decoding.is_empty() {
            let decode_start = Instant::now();
            // Admission is FIFO over monotonically increasing ids, so the
            // scheduler's round-robin order equals id order; pair the
            // decoding list with one BTreeMap pass to get one mutable slot
            // borrow per decoding request.
            decoding.sort_unstable_by_key(|(id, _, _)| *id);
            let first = decoding.first().map(|(id, _, _)| *id).expect("non-empty");
            let last = decoding.last().map(|(id, _, _)| *id).expect("non-empty");
            let mut decode_iter = decoding.iter().peekable();
            let mut batch_slots: Vec<(&mut Slot, u32, usize)> = Vec::new();
            // Restrict the pairing scan to the decoding id span so the
            // per-round cost tracks the running batch, not every
            // completed/failed slot still awaiting collection.
            for (id, slot) in self.slots.range_mut(first..=last) {
                match decode_iter.peek() {
                    Some(&&(did, token, pos)) if did == *id => {
                        decode_iter.next();
                        batch_slots.push((slot, token, pos));
                    }
                    Some(_) => {}
                    None => break,
                }
            }
            let steps = {
                let mut batch: Vec<DecodeSlot<'_>> = batch_slots
                    .iter_mut()
                    .map(|(slot, token, pos)| {
                        let Phase::Running(task) = &mut slot.phase else {
                            unreachable!("decoding request is running");
                        };
                        DecodeSlot {
                            token: *token,
                            pos: *pos,
                            cache: &mut task.cache,
                        }
                    })
                    .collect();
                self.engine.decode_step_batch(&mut batch)?
            };
            let share_us = (decode_start.elapsed().as_micros() / decoding.len() as u128) as u64;
            for ((slot, _, _), step) in batch_slots.iter_mut().zip(steps) {
                let Phase::Running(task) = &mut slot.phase else {
                    unreachable!("decoding request is running");
                };
                task.finish_round(step);
                task.add_decode_us(share_us);
                slot.stats.generated_tokens = task.generated.len();
            }
        }

        for id in &finished {
            self.scheduler.complete(*id);
            let slot = self.slots.get_mut(id).expect("finished request has a slot");
            let phase = std::mem::replace(&mut slot.phase, Phase::Failed(String::new()));
            let Phase::Running(task) = phase else {
                unreachable!("finished request was running");
            };
            slot.stats.generated_tokens = task.generated.len();
            slot.stats.finished_step = Some(now);
            slot.stats.timings = task.timings;
            slot.phase = Phase::Completed(Box::new(task.into_outcome(&self.engine)));
        }
        Ok(events)
    }

    /// Steps the engine until every submitted request has completed or
    /// failed, then returns the completed outcomes in submission order.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError`] if a decode step fails at the engine
    /// level.
    pub fn run_until_idle(&mut self) -> Result<Vec<RequestOutcome>, CocktailError> {
        while !self.is_idle() {
            self.step()?;
        }
        let completed: Vec<RequestId> = self
            .slots
            .iter()
            .filter(|(_, slot)| matches!(slot.phase, Phase::Completed(_)))
            .map(|(id, _)| *id)
            .collect();
        Ok(completed
            .into_iter()
            .filter_map(|id| self.take_outcome(id))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CocktailPipeline;
    use cocktail_baselines::Fp16Policy;
    use proptest::prelude::*;
    use std::collections::BTreeMap as Map;

    fn config() -> CocktailConfig {
        CocktailConfig::default().with_chunk_size(8).unwrap()
    }

    fn contexts() -> Vec<(String, String)> {
        (0..4)
            .map(|i| {
                let mut lines: Vec<String> = (0..6)
                    .map(|j| format!("entry {j} of journal {i} reports calm seas and steady winds"))
                    .collect();
                lines[2] = format!("important notice the docking code for bay {i} is lantern{i}");
                (
                    lines.join(" . "),
                    format!("what is the docking code for bay {i}?"),
                )
            })
            .collect()
    }

    #[test]
    fn batched_serving_matches_sequential_pipeline_byte_for_byte() {
        let pipeline = CocktailPipeline::new(ModelProfile::tiny(), config()).unwrap();
        let sequential: Vec<CocktailOutcome> = contexts()
            .iter()
            .map(|(ctx, q)| pipeline.run(ctx, q, 6).unwrap())
            .collect();

        let mut serving = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let ids: Vec<RequestId> = contexts()
            .iter()
            .map(|(ctx, q)| serving.submit(ServeRequest::new(ctx.clone(), q.clone(), 6)))
            .collect();
        let outcomes = serving.run_until_idle().unwrap();

        assert_eq!(outcomes.len(), sequential.len());
        for ((outcome, id), seq) in outcomes.iter().zip(&ids).zip(&sequential) {
            assert_eq!(outcome.id, *id);
            assert_eq!(outcome.outcome.answer, seq.answer);
            assert_eq!(outcome.outcome.generated_tokens, seq.generated_tokens);
            assert_eq!(outcome.outcome.cache_bytes, seq.cache_bytes);
            assert_eq!(outcome.outcome.report, seq.report);
        }
    }

    #[test]
    fn memory_budget_serializes_admissions() {
        // Budget for roughly one request at a time: requests must take
        // turns, and the budget must never be exceeded.
        let (ctx, q) = &contexts()[0];
        let mut sizing = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        sizing.submit(ServeRequest::new(ctx.clone(), q.clone(), 4));
        sizing.step().unwrap();
        let one_request = sizing.kv_bytes_in_use();
        assert!(one_request > 0);

        let budget = one_request + one_request / 2; // fits 1, not 2
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_scheduler_config(SchedulerConfig::default().with_budget(budget));
        let ids: Vec<RequestId> = contexts()
            .iter()
            .take(3)
            .map(|(c, q)| engine.submit(ServeRequest::new(c.clone(), q.clone(), 4)))
            .collect();
        let mut max_concurrent = 0;
        while !engine.is_idle() {
            engine.step().unwrap();
            assert!(
                engine.kv_bytes_in_use() <= budget,
                "budget exceeded: {} > {budget}",
                engine.kv_bytes_in_use()
            );
            max_concurrent = max_concurrent.max(engine.scheduler().running_len());
        }
        assert_eq!(max_concurrent, 1, "budget should force serial admission");
        for id in ids {
            assert_eq!(engine.state(id), Some(RequestState::Completed));
            let stats = engine.stats(id).unwrap();
            assert_eq!(stats.generated_tokens, 4);
            assert!(stats.admitted_step.is_some());
            assert!(stats.finished_step.is_some());
        }
    }

    #[test]
    fn oversized_request_fails_and_queue_drains_past_it() {
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_scheduler_config(SchedulerConfig::default().with_budget(16));
        let (ctx, q) = &contexts()[0];
        let big = engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 4));
        let outcomes = engine.run_until_idle().unwrap();
        assert!(outcomes.is_empty());
        assert_eq!(engine.state(big), Some(RequestState::Failed));
        assert!(engine.failure(big).unwrap().contains("budget"));
    }

    #[test]
    fn failed_requests_emit_a_terminal_event() {
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_scheduler_config(SchedulerConfig::default().with_budget(16));
        let (ctx, q) = &contexts()[0];
        let big = engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 4));
        let bad = engine.submit(ServeRequest::new("", "question", 4));
        let mut terminals = Vec::new();
        while !engine.is_idle() {
            for event in engine.step_events().unwrap() {
                assert_eq!(event.finish, Some(FinishReason::Failed));
                assert!(event.token.is_none());
                assert!(event.piece.is_empty());
                terminals.push(event.id);
            }
        }
        // Every failed request closes its stream with exactly one token-less
        // Failed event, so a gateway multiplexing step_events never dangles.
        terminals.sort();
        let mut expected = vec![big, bad];
        expected.sort();
        assert_eq!(terminals, expected);
        assert!(engine.failure(big).unwrap().contains("budget"));
        assert!(engine.failure(bad).unwrap().contains("non-empty"));
    }

    #[test]
    fn invalid_request_fails_without_poisoning_the_engine() {
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let bad = engine.submit(ServeRequest::new("", "question", 4));
        let (ctx, q) = &contexts()[1];
        let good = engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 3));
        let outcomes = engine.run_until_idle().unwrap();
        assert_eq!(engine.state(bad), Some(RequestState::Failed));
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].id, good);
        assert_eq!(outcomes[0].outcome.generated_tokens.len(), 3);
        // Failures are evictable so the slot table cannot grow forever.
        assert!(engine.take_failure(good).is_none());
        let (message, stats) = engine.take_failure(bad).unwrap();
        assert!(message.contains("non-empty"));
        assert_eq!(stats.generated_tokens, 0);
        assert_eq!(engine.state(bad), None);
    }

    #[test]
    fn explicit_policy_is_honoured_per_request() {
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let (ctx, q) = &contexts()[2];
        let fp16 = engine.submit(
            ServeRequest::builder()
                .context(ctx.clone())
                .query(q.clone())
                .max_new_tokens(3)
                .policy(Box::new(Fp16Policy::new()))
                .build(),
        );
        let cocktail = engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 3));
        let outcomes = engine.run_until_idle().unwrap();
        let by_id = |id: RequestId| outcomes.iter().find(|o| o.id == id).unwrap();
        assert_eq!(by_id(fp16).outcome.report.policy, "FP16");
        assert_eq!(by_id(cocktail).outcome.report.policy, "Cocktail");
        assert!(by_id(cocktail).outcome.cache_bytes < by_id(fp16).outcome.cache_bytes);
    }

    #[test]
    fn batch_cap_limits_concurrency() {
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_scheduler_config(SchedulerConfig::default().with_max_batch(2));
        for (ctx, q) in contexts().iter().take(4) {
            engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 5));
        }
        let mut max_concurrent = 0;
        while !engine.is_idle() {
            engine.step().unwrap();
            max_concurrent = max_concurrent.max(engine.scheduler().running_len());
        }
        assert_eq!(max_concurrent, 2);
    }

    #[test]
    fn zero_token_request_completes_immediately() {
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let (ctx, q) = &contexts()[3];
        let id = engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 0));
        let outcomes = engine.run_until_idle().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].id, id);
        assert!(outcomes[0].outcome.generated_tokens.is_empty());
    }

    /// Requests sharing one long preamble, each with its own tail and
    /// query.
    fn shared_prefix_contexts(n: usize) -> Vec<(String, String)> {
        let preamble: Vec<String> = (0..8)
            .map(|i| format!("standing order {i} requires every vessel to log position daily"))
            .collect();
        let preamble = preamble.join(" . ");
        (0..n)
            .map(|i| {
                (
                    format!(
                        "{preamble} . special bulletin the berth assignment for convoy {i} is \
                         pier{i}"
                    ),
                    format!("what is the berth assignment for convoy {i}?"),
                )
            })
            .collect()
    }

    #[test]
    fn prefix_cache_is_byte_identical_to_disabled_serving() {
        let requests = shared_prefix_contexts(4);
        let submit_all = |engine: &mut ServingEngine| -> Vec<RequestId> {
            requests
                .iter()
                .map(|(ctx, q)| engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 6)))
                .collect()
        };

        let mut plain = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        submit_all(&mut plain);
        let baseline = plain.run_until_idle().unwrap();

        let mut cached = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_prefix_cache(PrefixCacheConfig::default());
        let ids = submit_all(&mut cached);
        let outcomes = cached.run_until_idle().unwrap();

        assert_eq!(outcomes.len(), baseline.len());
        for (warm, cold) in outcomes.iter().zip(&baseline) {
            assert_eq!(
                warm.outcome.answer, cold.outcome.answer,
                "prefix reuse changed an answer"
            );
            assert_eq!(warm.outcome.generated_tokens, cold.outcome.generated_tokens);
            assert_eq!(warm.outcome.cache_bytes, cold.outcome.cache_bytes);
            assert_eq!(warm.outcome.report, cold.outcome.report);
        }
        // The first request is cold; every later one reuses the preamble.
        assert_eq!(outcomes[0].stats.prefix_reused_tokens, 0);
        for outcome in &outcomes[1..] {
            assert!(
                outcome.stats.prefix_reused_tokens > 0,
                "{} did not reuse the shared preamble",
                outcome.id
            );
        }
        let stats = cached.prefix_cache_stats().unwrap();
        assert!(stats.hits >= (ids.len() - 1) as u64);
        assert!(stats.reused_tokens > 0);
        assert!(stats.entries >= 1);
    }

    #[test]
    fn intra_batch_shared_prefix_is_reused_within_one_step() {
        // Two identical contexts submitted before the first step: the
        // two-pass admission must prefill the first cold and resume the
        // second from the freshly published blocks, inside a single step.
        let (ctx, q) = &shared_prefix_contexts(1)[0];
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_prefix_cache(PrefixCacheConfig::default());
        let a = engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 3));
        let b = engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 3));
        engine.step().unwrap();
        let stats_a = engine.stats(a).unwrap();
        let stats_b = engine.stats(b).unwrap();
        assert_eq!(stats_a.prefix_reused_tokens, 0);
        assert_eq!(
            stats_b.prefix_reused_tokens, stats_b.context_tokens,
            "an identical context must reuse the whole context prefix"
        );
        let outcomes = engine.run_until_idle().unwrap();
        assert_eq!(outcomes[0].outcome.answer, outcomes[1].outcome.answer);
    }

    #[test]
    fn prefix_cache_respects_budget_and_evicts_under_pressure() {
        // Budget sized for roughly one admitted request: resident shared
        // blocks must never push usage past the budget, and admission must
        // evict cached prefixes rather than stall.
        let requests = shared_prefix_contexts(3);
        let mut sizing = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        sizing.submit(ServeRequest::new(
            requests[0].0.clone(),
            requests[0].1.clone(),
            4,
        ));
        sizing.step().unwrap();
        let one_request = sizing.kv_bytes_in_use();
        let budget = one_request + one_request / 2;

        let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_scheduler_config(SchedulerConfig::default().with_budget(budget))
            .with_prefix_cache(PrefixCacheConfig::default());
        let ids: Vec<RequestId> = requests
            .iter()
            .map(|(ctx, q)| engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 4)))
            .collect();
        while !engine.is_idle() {
            engine.step().unwrap();
            assert!(
                engine.kv_bytes_in_use() <= budget,
                "budget exceeded with shared blocks: {} > {budget}",
                engine.kv_bytes_in_use()
            );
        }
        for id in ids {
            assert_eq!(engine.state(id), Some(RequestState::Completed));
        }
        let stats = engine.prefix_cache_stats().unwrap();
        assert!(
            stats.resident_bytes + engine.kv_bytes_in_use() <= budget,
            "resident shared blocks exceed the budget"
        );
    }

    #[test]
    #[should_panic(expected = "before submitting")]
    fn prefix_cache_must_be_configured_before_traffic() {
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let (ctx, q) = &contexts()[0];
        engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 2));
        let _ = engine.with_prefix_cache(PrefixCacheConfig::default());
    }

    #[test]
    fn prefill_window_one_reproduces_sequential_admission() {
        let requests = shared_prefix_contexts(3);
        let run = |window: usize| -> Vec<RequestOutcome> {
            let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
                .unwrap()
                .with_scheduler_config(SchedulerConfig::default().with_prefill_window(window));
            for (ctx, q) in &requests {
                engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 5));
            }
            engine.run_until_idle().unwrap()
        };
        let windowed = run(4);
        let sequential = run(1);
        for (a, b) in windowed.iter().zip(&sequential) {
            assert_eq!(a.outcome.answer, b.outcome.answer);
            assert_eq!(a.outcome.generated_tokens, b.outcome.generated_tokens);
        }
    }

    #[test]
    fn continuous_batching_admits_mid_decode() {
        // Submit one request, start decoding, then submit another: the
        // second must join while the first is mid-flight, and both must
        // still match their sequential outcomes.
        let pipeline = CocktailPipeline::new(ModelProfile::tiny(), config()).unwrap();
        let ctxs = contexts();
        let seq_a = pipeline.run(&ctxs[0].0, &ctxs[0].1, 8).unwrap();
        let seq_b = pipeline.run(&ctxs[1].0, &ctxs[1].1, 8).unwrap();

        let mut engine = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let a = engine.submit(ServeRequest::new(ctxs[0].0.clone(), ctxs[0].1.clone(), 8));
        engine.step().unwrap();
        engine.step().unwrap();
        assert_eq!(engine.state(a), Some(RequestState::Running));
        let b = engine.submit(ServeRequest::new(ctxs[1].0.clone(), ctxs[1].1.clone(), 8));
        let outcomes = engine.run_until_idle().unwrap();
        let by_id = |id: RequestId| outcomes.iter().find(|o| o.id == id).unwrap();
        assert_eq!(by_id(a).outcome.generated_tokens, seq_a.generated_tokens);
        assert_eq!(by_id(b).outcome.generated_tokens, seq_b.generated_tokens);
        // b was admitted after a (continuous batching, not a fixed batch).
        assert!(by_id(b).stats.admitted_step > by_id(a).stats.admitted_step);
    }

    /// Drives the engine with `step_events`, returning the concatenated
    /// streamed pieces, event counts and finish reasons per request.
    fn stream_until_idle(
        engine: &mut ServingEngine,
    ) -> (Map<RequestId, String>, Map<RequestId, FinishReason>) {
        let mut pieces: Map<RequestId, String> = Map::new();
        let mut finishes: Map<RequestId, FinishReason> = Map::new();
        while !engine.is_idle() {
            for event in engine.step_events().unwrap() {
                pieces.entry(event.id).or_default().push_str(&event.piece);
                if let Some(reason) = event.finish {
                    assert!(
                        finishes.insert(event.id, reason).is_none(),
                        "{} finished twice",
                        event.id
                    );
                }
            }
        }
        (pieces, finishes)
    }

    #[test]
    fn streamed_pieces_concatenate_to_the_collected_answer_and_sequential_output() {
        let pipeline = CocktailPipeline::new(ModelProfile::tiny(), config()).unwrap();
        let sequential: Vec<CocktailOutcome> = contexts()
            .iter()
            .map(|(ctx, q)| pipeline.run(ctx, q, 6).unwrap())
            .collect();

        let mut engine = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let ids: Vec<RequestId> = contexts()
            .iter()
            .map(|(ctx, q)| engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 6)))
            .collect();
        let (pieces, finishes) = stream_until_idle(&mut engine);

        for (id, seq) in ids.iter().zip(&sequential) {
            let outcome = engine.take_outcome(*id).expect("request completed");
            // Streamed pieces == collected outcome == sequential pipeline.
            assert_eq!(pieces[id], outcome.outcome.answer, "{id} pieces diverged");
            assert_eq!(outcome.outcome.answer, seq.answer);
            assert_eq!(finishes[id], FinishReason::Length);
            assert!(outcome.stats.first_token_step.is_some());
            assert!(outcome.stats.first_token_step <= outcome.stats.finished_step);
            assert!(!outcome.stats.cancelled);
        }
    }

    #[test]
    fn streamed_events_carry_monotone_indices_and_steps() {
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let (ctx, q) = &contexts()[0];
        let id = engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 5));
        let mut events = Vec::new();
        while !engine.is_idle() {
            events.extend(engine.step_events().unwrap());
        }
        assert_eq!(events.len(), 5, "one event per token");
        for (i, event) in events.iter().enumerate() {
            assert_eq!(event.id, id);
            assert_eq!(event.index, i);
            assert!(event.token.is_some());
            if i > 0 {
                assert!(event.step > events[i - 1].step, "steps must advance");
                assert!(event.piece.starts_with(' '), "separator-prefixed piece");
            }
        }
        assert_eq!(events.last().unwrap().finish, Some(FinishReason::Length));
    }

    #[test]
    fn zero_token_request_emits_one_tokenless_terminal_event() {
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let (ctx, q) = &contexts()[1];
        let id = engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 0));
        let mut events = Vec::new();
        while !engine.is_idle() {
            events.extend(engine.step_events().unwrap());
        }
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, id);
        assert_eq!(events[0].token, None);
        assert_eq!(events[0].piece, "");
        assert_eq!(events[0].finish, Some(FinishReason::Length));
        assert!(engine.take_outcome(id).is_some());
    }

    #[test]
    fn stop_sequence_ends_generation_early_and_byte_identically() {
        let (ctx, q) = &contexts()[2];

        // Reference: the full unstopped answer.
        let mut full_engine = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        full_engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 8));
        let full = full_engine
            .run_until_idle()
            .unwrap()
            .pop()
            .expect("one completed request");
        let words: Vec<&str> = full.outcome.answer.split(' ').collect();
        assert!(words.len() >= 3, "need a mid-answer word to stop on");
        // Stop on the third word: greedy decoding reproduces the same
        // prefix, so the stop must trigger at exactly that token.
        let stop = words[2].to_string();

        let mut engine = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let id = engine.submit(
            ServeRequest::builder()
                .context(ctx.clone())
                .query(q.clone())
                .max_new_tokens(8)
                .stop_sequence(stop.clone())
                .build(),
        );
        let (pieces, finishes) = stream_until_idle(&mut engine);
        let outcome = engine.take_outcome(id).expect("stopped request completes");

        assert_eq!(finishes[&id], FinishReason::Stop);
        assert_eq!(pieces[&id], outcome.outcome.answer);
        assert!(
            outcome.outcome.generated_tokens.len() < full.outcome.generated_tokens.len(),
            "stopping early must decode fewer tokens"
        );
        // The stopped answer is a byte prefix of the full answer, ending
        // with the stop sequence.
        assert!(full.outcome.answer.starts_with(&outcome.outcome.answer));
        assert!(outcome.outcome.answer.ends_with(&stop));
        assert_eq!(
            outcome.outcome.generated_tokens,
            full.outcome.generated_tokens[..outcome.outcome.generated_tokens.len()].to_vec()
        );
    }

    #[test]
    fn cancelling_a_running_request_frees_its_budget_and_leaves_others_intact() {
        let requests = contexts();
        let mut reference = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        for (ctx, q) in &requests {
            reference.submit(ServeRequest::new(ctx.clone(), q.clone(), 8));
        }
        let expected = reference.run_until_idle().unwrap();

        let mut engine = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let ids: Vec<RequestId> = requests
            .iter()
            .map(|(ctx, q)| engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 8)))
            .collect();
        // Let everyone start decoding, then cancel request 1 mid-flight.
        engine.step().unwrap();
        engine.step().unwrap();
        let before = engine.kv_bytes_in_use();
        assert_eq!(engine.state(ids[1]), Some(RequestState::Running));
        assert!(engine.cancel(ids[1]));
        assert!(
            engine.kv_bytes_in_use() < before,
            "cancellation must release the request's KV charge"
        );
        assert_eq!(engine.state(ids[1]), Some(RequestState::Cancelled));
        assert!(!engine.cancel(ids[1]), "double cancel is a no-op");

        let outcomes = engine.run_until_idle().unwrap();
        assert_eq!(outcomes.len(), requests.len() - 1);
        for outcome in &outcomes {
            let seq = expected.iter().find(|o| o.id == outcome.id).unwrap();
            assert_eq!(
                outcome.outcome.answer, seq.outcome.answer,
                "cancellation perturbed a surviving request"
            );
        }
        let stats = engine.take_cancelled(ids[1]).expect("cancelled stats");
        assert!(stats.cancelled);
        assert!(stats.generated_tokens < 8);
        assert!(stats.finished_step.is_some());
        assert_eq!(engine.state(ids[1]), None);
        // Cancelling a completed request is refused.
        assert!(!engine.cancel(ids[0]));
    }

    #[test]
    fn cancellation_emits_a_terminal_event_on_the_next_step() {
        let requests = contexts();
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let ids: Vec<RequestId> = requests
            .iter()
            .take(2)
            .map(|(ctx, q)| engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 8)))
            .collect();
        engine.step_events().unwrap();
        assert!(engine.cancel(ids[0]));
        let events = engine.step_events().unwrap();
        let terminal = events
            .iter()
            .find(|e| e.id == ids[0])
            .expect("cancelled request closes its stream");
        assert_eq!(terminal.finish, Some(FinishReason::Cancelled));
        assert_eq!(terminal.token, None);
        assert_eq!(terminal.piece, "");
        assert_eq!(terminal.index, 1, "one token was streamed before cancel");
        // The terminal event is delivered exactly once.
        assert!(!engine.step_events().unwrap().iter().any(|e| e.id == ids[0]));
        // step() reports the cancellation as a finish too.
        let survivors = engine.run_until_idle().unwrap();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].id, ids[1]);
    }

    #[test]
    fn cancelling_a_queued_request_removes_it_before_admission() {
        // Batch cap 1 keeps later requests queued while the first runs.
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_scheduler_config(SchedulerConfig::default().with_max_batch(1));
        let requests = contexts();
        let ids: Vec<RequestId> = requests
            .iter()
            .take(3)
            .map(|(ctx, q)| engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 4)))
            .collect();
        engine.step().unwrap();
        assert_eq!(engine.state(ids[0]), Some(RequestState::Running));
        assert_eq!(engine.state(ids[1]), Some(RequestState::Queued));
        assert!(engine.cancel(ids[1]));
        let outcomes = engine.run_until_idle().unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(engine.state(ids[1]), Some(RequestState::Cancelled));
        let stats = engine.take_cancelled(ids[1]).unwrap();
        assert_eq!(stats.generated_tokens, 0);
        assert!(stats.cancelled);
    }

    #[test]
    fn cancellation_releases_shared_prefix_pins() {
        let requests = shared_prefix_contexts(3);
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_prefix_cache(PrefixCacheConfig::default());
        let ids: Vec<RequestId> = requests
            .iter()
            .map(|(ctx, q)| engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 6)))
            .collect();
        engine.step().unwrap();
        // In-flight warm requests pin the preamble entry.
        let pinned = engine.prefix_cache_stats().unwrap().pinned_entries;
        assert!(pinned > 0, "running warm requests must pin their prefix");
        for id in &ids {
            engine.cancel(*id);
        }
        assert_eq!(
            engine.prefix_cache_stats().unwrap().pinned_entries,
            0,
            "cancellation must release every shared-prefix pin"
        );
        assert!(engine.is_idle());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Cancelling random requests at random steps never violates the
        /// KV-budget invariant, always releases shared-prefix pins, and
        /// leaves every surviving request byte-identical to its own solo
        /// sequential pipeline run (the full-isolation guarantee documented
        /// on [`ServingEngine::cancel`]).
        #[test]
        fn random_cancellations_preserve_budget_pins_and_survivors(
            per_group in 2usize..4,
            cancel_seed in 0u64..500,
            cancel_count in 1usize..3,
        ) {
            let requests = shared_prefix_contexts(per_group + 1);
            let max_new = 6usize;
            let pipeline = CocktailPipeline::new(ModelProfile::tiny(), config()).unwrap();
            let solo: Vec<CocktailOutcome> = requests
                .iter()
                .map(|(ctx, q)| pipeline.run(ctx, q, max_new).unwrap())
                .collect();

            // Budget sized for roughly two requests (compressed bytes +
            // reserved FP16 tail), so admission takes turns under cancels.
            let tail = (max_new - 1) * pipeline.engine().config().kv_bytes_per_token_fp16();
            let budget = solo
                .iter()
                .map(|o| o.cache_bytes + tail)
                .max()
                .expect("at least one request") * 2;

            let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
                .unwrap()
                .with_scheduler_config(SchedulerConfig::default().with_budget(budget))
                .with_prefix_cache(PrefixCacheConfig::default().with_min_prefix_tokens(4));
            let ids: Vec<RequestId> = requests
                .iter()
                .map(|(ctx, q)| engine.submit(ServeRequest::new(ctx.clone(), q.clone(), max_new)))
                .collect();

            // A deterministic cancellation schedule drawn from the seed:
            // `cancel_count` distinct requests, each at its own step.
            let mut schedule: Vec<(usize, RequestId)> = (0..cancel_count)
                .map(|i| {
                    let mix = cancel_seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64);
                    let step = (mix % 7) as usize;
                    let victim = ids[(mix >> 8) as usize % ids.len()];
                    (step, victim)
                })
                .collect();
            schedule.sort_unstable();
            schedule.dedup_by_key(|(_, id)| *id);

            let mut cancelled: Vec<RequestId> = Vec::new();
            let mut guard = 0;
            while !engine.is_idle() {
                guard += 1;
                prop_assert!(guard < 10_000, "serving failed to quiesce");
                let step = engine.clock();
                for (at, id) in &schedule {
                    if *at <= step && !cancelled.contains(id) && engine.cancel(*id) {
                        cancelled.push(*id);
                    }
                }
                engine.step_events().unwrap();
                prop_assert!(
                    engine.kv_bytes_in_use() <= budget,
                    "budget invariant violated after cancellations: {} > {budget}",
                    engine.kv_bytes_in_use()
                );
            }

            let cache_stats = engine.prefix_cache_stats().expect("cache enabled");
            prop_assert_eq!(
                cache_stats.pinned_entries, 0,
                "idle engine must hold no shared-prefix pins"
            );

            for (i, id) in ids.iter().enumerate() {
                if cancelled.contains(id) {
                    let stats = engine.take_cancelled(*id).expect("cancelled stats");
                    prop_assert!(stats.cancelled);
                    prop_assert!(
                        stats.generated_tokens < max_new,
                        "a cancelled request must decode strictly fewer tokens than its budget"
                    );
                } else {
                    let outcome = engine.take_outcome(*id).expect("survivor completed");
                    prop_assert_eq!(
                        &outcome.outcome.answer, &solo[i].answer,
                        "survivor diverged from its solo sequential run"
                    );
                    prop_assert_eq!(&outcome.outcome.generated_tokens, &solo[i].generated_tokens);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Random mixes of sampled and greedy requests with random
        /// mid-flight cancellations: greedy requests stay byte-identical
        /// to their solo sequential pipeline runs, sampled requests
        /// replay identically given the same seed even though the
        /// cancellations give the two runs different batch compositions,
        /// and the KV budget holds every step.
        #[test]
        fn sampled_and_greedy_mixes_stay_deterministic_under_cancellation(
            sampled_mask in 1u32..15,
            base_seed in 0u64..500,
            cancel_seed in 0u64..500,
            cancel_count in 1usize..3,
        ) {
            let requests = shared_prefix_contexts(4);
            let max_new = 6usize;
            let build = |i: usize, (ctx, q): &(String, String)| {
                let mut builder = ServeRequest::builder()
                    .context(ctx.clone())
                    .query(q.clone())
                    .max_new_tokens(max_new);
                if sampled_mask & (1 << i) != 0 {
                    builder = builder.sampling(
                        SamplingParams::for_request(base_seed, i as u64)
                            .with_temperature(0.9)
                            .with_top_k(12),
                    );
                }
                builder.build()
            };

            // Solo greedy references, interned in submission order (the
            // batched engines below encode the same word sequence).
            let pipeline = CocktailPipeline::new(ModelProfile::tiny(), config()).unwrap();
            let solo: Vec<CocktailOutcome> = requests
                .iter()
                .map(|(ctx, q)| pipeline.run(ctx, q, max_new).unwrap())
                .collect();

            // A budget generous enough to admit everything in the first
            // step (so every prompt is encoded before any cancellation
            // fires), still asserted every step below.
            let tail = (max_new - 1) * pipeline.engine().config().kv_bytes_per_token_fp16();
            let budget: usize = solo.iter().map(|o| o.cache_bytes + tail).sum();

            let run = |with_cancels: bool| -> (Vec<RequestId>, Vec<RequestId>, ServingEngine) {
                let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
                    .unwrap()
                    .with_scheduler_config(SchedulerConfig::default().with_budget(budget))
                    .with_prefix_cache(PrefixCacheConfig::default().with_min_prefix_tokens(4));
                let ids: Vec<RequestId> = requests
                    .iter()
                    .enumerate()
                    .map(|(i, r)| engine.submit(build(i, r)))
                    .collect();
                // Cancellations start at step 1, after the first admission
                // sweep has encoded every prompt.
                let schedule: Vec<(usize, RequestId)> = (0..cancel_count)
                    .map(|i| {
                        let mix = cancel_seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(i as u64);
                        ((mix % 5) as usize + 1, ids[(mix >> 8) as usize % ids.len()])
                    })
                    .collect();
                let mut cancelled: Vec<RequestId> = Vec::new();
                let mut guard = 0;
                while !engine.is_idle() {
                    guard += 1;
                    assert!(guard < 10_000, "serving failed to quiesce");
                    let step = engine.clock();
                    if with_cancels {
                        for (at, id) in &schedule {
                            if *at <= step && !cancelled.contains(id) && engine.cancel(*id) {
                                cancelled.push(*id);
                            }
                        }
                    }
                    engine.step_events().unwrap();
                    assert!(
                        engine.kv_bytes_in_use() <= budget,
                        "budget invariant violated: {} > {budget}",
                        engine.kv_bytes_in_use()
                    );
                }
                (ids, cancelled, engine)
            };

            let (ids, cancelled, mut engine) = run(true);
            let (replay_ids, _, mut replay) = run(false);

            for (i, id) in ids.iter().enumerate() {
                if cancelled.contains(id) {
                    continue;
                }
                let outcome = engine.take_outcome(*id).expect("survivor completed");
                let rerun = replay
                    .take_outcome(replay_ids[i])
                    .expect("replay completed");
                if sampled_mask & (1 << i) != 0 {
                    // A sampled request replays bit-identically from its
                    // seed, no matter which batchmates got cancelled.
                    prop_assert_eq!(
                        &outcome.outcome.generated_tokens, &rerun.outcome.generated_tokens,
                        "sampled request drew different tokens on replay"
                    );
                    prop_assert_eq!(&outcome.outcome.answer, &rerun.outcome.answer);
                } else {
                    // A greedy request is byte-identical to its solo
                    // sequential pipeline run and to its replay.
                    prop_assert_eq!(
                        &outcome.outcome.answer, &solo[i].answer,
                        "greedy request diverged from its solo run"
                    );
                    prop_assert_eq!(&outcome.outcome.generated_tokens, &solo[i].generated_tokens);
                    prop_assert_eq!(&outcome.outcome.answer, &rerun.outcome.answer);
                }
            }
        }
    }

    /// A unique temp path per test invocation so parallel tests never share
    /// snapshot or spill files.
    fn temp_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("cocktail_serving_{}_{tag}_{n}", std::process::id()))
    }

    #[test]
    fn serve_request_builder_matches_the_legacy_constructors() {
        let request = ServeRequest::builder()
            .context("ctx")
            .query("q")
            .max_new_tokens(7)
            .stop_sequence("done")
            .prefix_reuse(false)
            .build();
        assert_eq!(request.context, "ctx");
        assert_eq!(request.query, "q");
        assert_eq!(request.max_new_tokens, 7);
        assert_eq!(request.stop_sequences, vec!["done".to_string()]);
        assert!(!request.prefix_reuse);

        #[allow(deprecated)]
        let legacy = ServeRequest::new("ctx", "q", 7).with_stop_sequence("done");
        assert_eq!(legacy.context, request.context);
        assert_eq!(legacy.stop_sequences, request.stop_sequences);
        assert!(legacy.prefix_reuse, "legacy constructor defaults to reuse");
    }

    #[test]
    fn warm_restart_serves_byte_identical_answers_from_a_snapshot() {
        // Reference: a never-restarted engine serving the workload twice.
        let serve_all = |engine: &mut ServingEngine| -> Vec<String> {
            let reqs = contexts();
            for (ctx, q) in &reqs {
                engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 6));
            }
            engine
                .run_until_idle()
                .unwrap()
                .into_iter()
                .map(|o| o.outcome.answer)
                .collect()
        };
        let mut reference = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_prefix_cache(PrefixCacheConfig::default());
        let first = serve_all(&mut reference);
        let second = serve_all(&mut reference);

        // "Restart": snapshot the warm engine, build a fresh one, restore.
        let snapshot = reference.snapshot_bytes();
        let mut restarted = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_prefix_cache(PrefixCacheConfig::default());
        let report = restarted.restore_from_bytes(&snapshot);
        assert!(report.restored, "restore failed: {:?}", report.reason);
        assert!(report.nodes > 0);
        assert!(report.resident_bytes > 0);

        // The restored engine serves the workload warm: every request
        // reuses cached prefix tokens and every answer is byte-identical
        // to the uninterrupted engine's.
        let stats_before = restarted.prefix_cache_stats().unwrap();
        let restored_answers = serve_all(&mut restarted);
        assert_eq!(restored_answers, second);
        assert_eq!(first, second, "prefix reuse must be bit-exact");
        let stats_after = restarted.prefix_cache_stats().unwrap();
        assert!(
            stats_after.hits > stats_before.hits,
            "a restored engine must serve its first requests from the cache"
        );
    }

    #[test]
    fn unusable_snapshots_degrade_to_a_clean_cold_start() {
        let mut warm = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_prefix_cache(PrefixCacheConfig::default());
        let (ctx, q) = &contexts()[0];
        warm.submit(ServeRequest::new(ctx.clone(), q.clone(), 6));
        warm.run_until_idle().unwrap();
        let snapshot = warm.snapshot_bytes();

        // Wrong configuration fingerprint (different chunk size).
        let other_config = CocktailConfig::default().with_chunk_size(16).unwrap();
        let mut other = ServingEngine::new(ModelProfile::tiny(), other_config)
            .unwrap()
            .with_prefix_cache(PrefixCacheConfig::default());
        let report = other.restore_from_bytes(&snapshot);
        assert!(!report.restored);
        assert!(report.reason.as_deref().unwrap().contains("fingerprint"));

        // Corruption and truncation: rejected, no panic, engine still cold.
        let mut fresh = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_prefix_cache(PrefixCacheConfig::default());
        let mut corrupt = snapshot.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        assert!(!fresh.restore_from_bytes(&corrupt).restored);
        assert!(!fresh.restore_from_bytes(&snapshot[..40]).restored);
        assert_eq!(fresh.prefix_cache_stats().unwrap().nodes, 0);

        // A degraded engine still serves, just cold.
        fresh.submit(ServeRequest::new(ctx.clone(), q.clone(), 6));
        let outcomes = fresh.run_until_idle().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(!outcomes[0].outcome.answer.is_empty());
    }

    #[test]
    fn snapshot_to_and_restore_from_round_trip_on_disk() {
        let path = temp_path("roundtrip");
        let mut warm = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_prefix_cache(PrefixCacheConfig::default());
        let (ctx, q) = &contexts()[1];
        warm.submit(ServeRequest::new(ctx.clone(), q.clone(), 6));
        warm.run_until_idle().unwrap();

        let report = warm.snapshot_to(&path).unwrap();
        assert!(report.bytes > 0);
        assert!(report.nodes > 0);

        let mut restarted = ServingEngine::new(ModelProfile::tiny(), config()).unwrap();
        let restore = restarted.restore_from(&path);
        assert!(restore.restored, "restore failed: {:?}", restore.reason);
        assert_eq!(restore.nodes, report.nodes);

        // A missing file degrades instead of erroring.
        std::fs::remove_file(&path).unwrap();
        let missing = restarted.restore_from(&path);
        assert!(!missing.restored);
        assert!(missing.reason.as_deref().unwrap().contains("read snapshot"));
    }

    #[test]
    fn prefix_reuse_opt_out_forces_cold_prefill_without_publishing() {
        let (ctx, q) = &contexts()[2];
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_prefix_cache(PrefixCacheConfig::default());

        let build = |reuse: bool| {
            ServeRequest::builder()
                .context(ctx.clone())
                .query(q.clone())
                .max_new_tokens(6)
                .prefix_reuse(reuse)
                .build()
        };

        // Opted-out requests neither publish to the cache ...
        engine.submit(build(false));
        let outcomes = engine.run_until_idle().unwrap();
        assert_eq!(engine.prefix_cache_stats().unwrap().nodes, 0);
        assert_eq!(outcomes[0].stats.prefix_reused_tokens, 0);

        // ... nor read from it, even once a reusing request has warmed it.
        engine.submit(build(true));
        let outcomes = engine.run_until_idle().unwrap();
        assert!(engine.prefix_cache_stats().unwrap().nodes > 0);
        assert_eq!(outcomes[0].stats.prefix_reused_tokens, 0);

        engine.submit(build(false));
        engine.submit(build(true));
        let outcomes = engine.run_until_idle().unwrap();
        assert_eq!(outcomes[0].stats.prefix_reused_tokens, 0);
        assert!(outcomes[1].stats.prefix_reused_tokens > 0);
        // Opting out never changes bytes, only where they come from.
        assert_eq!(outcomes[0].outcome.answer, outcomes[1].outcome.answer);
    }

    #[test]
    fn cold_tier_repromotes_evicted_prefixes_during_serving() {
        let path = temp_path("spill");
        // A two-node cap: room for the contexts' shared preamble plus one
        // branch tail, so caching a second context demotes the first
        // branch and repromoting it demotes the second in turn.
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config())
            .unwrap()
            .with_prefix_cache(PrefixCacheConfig::default().with_max_entries(2))
            .with_cold_tier(&path)
            .unwrap();

        let reqs = contexts();
        let (ctx0, q0) = &reqs[0];
        let (ctx1, q1) = &reqs[1];

        engine.submit(ServeRequest::new(ctx0.clone(), q0.clone(), 6));
        engine.run_until_idle().unwrap();
        engine.submit(ServeRequest::new(ctx1.clone(), q1.clone(), 6));
        engine.run_until_idle().unwrap();
        let stats = engine.prefix_cache_stats().unwrap();
        assert!(
            stats.demotions > 0,
            "cap of 1 must demote the first context"
        );
        assert!(stats.cold_resident_bytes > 0);

        // Re-serving the demoted context repromotes it from disk: the
        // request reuses prefix tokens it could not have found in RAM.
        engine.submit(ServeRequest::new(ctx0.clone(), q0.clone(), 6));
        let outcomes = engine.run_until_idle().unwrap();
        let stats = engine.prefix_cache_stats().unwrap();
        assert!(stats.repromotions > 0, "cold hit must repromote");
        assert!(outcomes[0].stats.prefix_reused_tokens > 0);
        std::fs::remove_file(&path).ok();
    }
}
