//! Cocktail as a [`CachePolicy`], pluggable wherever the baselines are.

use crate::config::CocktailConfig;
use crate::error::CocktailError;
use crate::reorder::apply_plan;
use crate::search::{BitwidthPlan, ChunkQuantSearch};
use cocktail_baselines::{
    CachePolicy, PolicyContext, PolicyError, PolicyReport, SearchGranularity,
};
use cocktail_kvcache::{ChunkedKvCache, ChunkedLayerCache};

/// The Cocktail cache policy: chunk-level quantization search followed by
/// chunk reordering and mixed-precision quantization.
///
/// The policy consumes the [`PolicyContext`]: when `chunk_scores` are
/// present they are used directly (so the encoder runs once per request,
/// not once per layer); otherwise the configured encoder scores
/// `chunk_texts` against `query`. With Module I disabled the relevance-blind
/// fallback plan is used, and with Module II disabled chunks are quantized
/// in logical order without reordering — the two ablations of Table V.
///
/// # Example
///
/// ```
/// use cocktail_baselines::{CachePolicy, PolicyContext};
/// use cocktail_core::{CocktailConfig, CocktailPolicy};
/// use cocktail_kvcache::{ChunkSegmentation, ChunkedLayerCache};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = cocktail_tensor::rng::gaussian_matrix(96, 16, 1.0, 1);
/// let v = cocktail_tensor::rng::gaussian_matrix(96, 16, 1.0, 2);
/// let seg = ChunkSegmentation::new(96, 32)?;
/// let mut cache = ChunkedLayerCache::from_prefill(&k, &v, &seg)?;
///
/// let policy = CocktailPolicy::new(CocktailConfig::default())?;
/// let ctx = PolicyContext::new(
///     vec!["filler one".into(), "the launch code is omega".into(), "filler two".into()],
///     "what is the launch code?",
/// );
/// let report = policy.apply_layer(&mut cache, &ctx)?;
/// assert_eq!(report.total_chunks(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CocktailPolicy {
    config: CocktailConfig,
    search: ChunkQuantSearch,
}

impl CocktailPolicy {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: CocktailConfig) -> Result<Self, CocktailError> {
        config.validate()?;
        let search = ChunkQuantSearch::new(config.clone());
        Ok(Self { config, search })
    }

    /// The configuration in use.
    pub fn config(&self) -> &CocktailConfig {
        &self.config
    }

    /// Computes the bitwidth plan for a request, honouring the Module I
    /// switch and any precomputed scores in the context.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidInput`] if the number of chunk texts
    /// or scores does not match `chunk_count`.
    pub fn plan_for(
        &self,
        ctx: &PolicyContext,
        chunk_count: usize,
    ) -> Result<BitwidthPlan, PolicyError> {
        if !self.config.enable_search {
            return Ok(self.search.plan_without_search(chunk_count));
        }
        let plan = if let Some(scores) = &ctx.chunk_scores {
            if scores.len() != chunk_count {
                return Err(PolicyError::InvalidInput(format!(
                    "{} precomputed scores for {} chunks",
                    scores.len(),
                    chunk_count
                )));
            }
            self.search
                .plan_from_scores(scores)
                .map_err(|e| PolicyError::InvalidInput(e.to_string()))?
        } else {
            if ctx.chunk_texts.len() != chunk_count {
                return Err(PolicyError::InvalidInput(format!(
                    "{} chunk texts for {} cache chunks",
                    ctx.chunk_texts.len(),
                    chunk_count
                )));
            }
            self.search
                .plan(&ctx.query, &ctx.chunk_texts)
                .map_err(|e| PolicyError::InvalidInput(e.to_string()))?
        };
        Ok(plan)
    }

    fn report_for(&self, plan: &BitwidthPlan) -> PolicyReport {
        let search = if self.config.enable_search {
            SearchGranularity::ChunkLevel {
                chunks: plan.assignments().len(),
            }
        } else {
            SearchGranularity::None
        };
        let mut report = PolicyReport::new(self.name(), search);
        for &bw in plan.assignments() {
            report.record_chunks(bw, 1);
        }
        report
    }
}

impl CachePolicy for CocktailPolicy {
    fn name(&self) -> &'static str {
        "Cocktail"
    }

    fn apply_layer(
        &self,
        cache: &mut ChunkedLayerCache,
        ctx: &PolicyContext,
    ) -> Result<PolicyReport, PolicyError> {
        let plan = self.plan_for(ctx, cache.chunk_count())?;
        apply_plan(
            cache,
            &plan,
            self.config.group_size,
            self.config.enable_reorder,
        )?;
        Ok(self.report_for(&plan))
    }

    fn apply(
        &self,
        cache: &mut ChunkedKvCache,
        ctx: &PolicyContext,
    ) -> Result<PolicyReport, PolicyError> {
        // Run the (comparatively expensive) encoder once per request, then
        // reuse the scores for every layer and head.
        let enriched = if self.config.enable_search
            && ctx.chunk_scores.is_none()
            && !ctx.chunk_texts.is_empty()
        {
            let scorer = self.config.encoder.build();
            let scores = scorer.score(&ctx.query, &ctx.chunk_texts);
            ctx.clone().with_scores(scores)
        } else {
            ctx.clone()
        };

        let mut combined: Option<PolicyReport> = None;
        let mut failure: Option<PolicyError> = None;
        cache
            .try_for_each_mut(|_, _, layer| {
                if failure.is_some() {
                    return Ok(());
                }
                match self.apply_layer(layer, &enriched) {
                    Ok(report) => {
                        match &mut combined {
                            Some(c) => c.merge(&report),
                            None => combined = Some(report),
                        }
                        Ok(())
                    }
                    Err(err) => {
                        failure = Some(err);
                        Ok(())
                    }
                }
            })
            .map_err(PolicyError::from)?;
        if let Some(err) = failure {
            return Err(err);
        }
        Ok(combined.unwrap_or_else(|| {
            PolicyReport::new(self.name(), SearchGranularity::ChunkLevel { chunks: 0 })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_kvcache::ChunkSegmentation;
    use cocktail_quant::Bitwidth;
    use cocktail_tensor::rng;

    fn layer_cache(tokens: usize, chunk: usize, seed: u64) -> ChunkedLayerCache {
        let k = rng::gaussian_matrix(tokens, 16, 1.0, seed);
        let v = rng::gaussian_matrix(tokens, 16, 1.0, seed + 1);
        let seg = ChunkSegmentation::new(tokens, chunk).unwrap();
        ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap()
    }

    fn needle_context(chunks: usize, needle_at: usize) -> (Vec<String>, String) {
        let texts: Vec<String> = (0..chunks)
            .map(|i| {
                if i == needle_at {
                    "the reactor override phrase is silver heron nine two".to_string()
                } else {
                    format!("maintenance entry {i} listing routine checks of pumps valves filters and gauges")
                }
            })
            .collect();
        (texts, "what is the reactor override phrase?".to_string())
    }

    #[test]
    fn relevant_chunk_keeps_fp16_and_most_go_int2() {
        let mut cache = layer_cache(8 * 32, 32, 1);
        let (texts, query) = needle_context(8, 5);
        let policy = CocktailPolicy::new(CocktailConfig::default()).unwrap();
        let ctx = PolicyContext::new(texts, query);
        let report = policy.apply_layer(&mut cache, &ctx).unwrap();

        assert_eq!(report.total_chunks(), 8);
        assert!(report.chunks_at(Bitwidth::Fp16) >= 1);
        assert!(report.chunks_at(Bitwidth::Int2) >= 4);
        // The needle chunk (logical index 5) stays FP16.
        let needle_chunk = cache
            .chunks()
            .iter()
            .find(|c| c.logical_index() == 5)
            .unwrap();
        assert_eq!(needle_chunk.bitwidth(), Bitwidth::Fp16);
        assert_eq!(report.search, SearchGranularity::ChunkLevel { chunks: 8 });
    }

    #[test]
    fn reordering_groups_chunks_by_precision() {
        let mut cache = layer_cache(8 * 32, 32, 3);
        let (texts, query) = needle_context(8, 2);
        let policy = CocktailPolicy::new(CocktailConfig::default()).unwrap();
        policy
            .apply_layer(&mut cache, &PolicyContext::new(texts, query))
            .unwrap();
        let widths: Vec<Bitwidth> = cache.chunks().iter().map(|c| c.bitwidth()).collect();
        let mut sorted = widths.clone();
        sorted.sort();
        assert_eq!(widths, sorted);
    }

    #[test]
    fn without_reorder_logical_order_is_preserved() {
        let mut cache = layer_cache(6 * 32, 32, 5);
        let (texts, query) = needle_context(6, 0);
        let policy = CocktailPolicy::new(CocktailConfig::default().with_reorder(false)).unwrap();
        policy
            .apply_layer(&mut cache, &PolicyContext::new(texts, query))
            .unwrap();
        let logical: Vec<usize> = cache.chunks().iter().map(|c| c.logical_index()).collect();
        assert_eq!(logical, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn without_search_assignment_ignores_the_query() {
        let mut cache = layer_cache(10 * 32, 32, 7);
        let (texts, query) = needle_context(10, 9);
        let policy = CocktailPolicy::new(CocktailConfig::default().with_search(false)).unwrap();
        let report = policy
            .apply_layer(&mut cache, &PolicyContext::new(texts, query))
            .unwrap();
        assert_eq!(report.search, SearchGranularity::None);
        // The relevance-blind pattern puts FP16 at logical chunk 0, not at
        // the needle chunk 9.
        let chunk9 = cache
            .chunks()
            .iter()
            .find(|c| c.logical_index() == 9)
            .unwrap();
        assert_ne!(chunk9.bitwidth(), Bitwidth::Fp16);
    }

    #[test]
    fn precomputed_scores_bypass_the_encoder() {
        let mut cache = layer_cache(4 * 32, 32, 9);
        let policy = CocktailPolicy::new(CocktailConfig::default()).unwrap();
        let ctx = PolicyContext::new(vec![], "ignored").with_scores(vec![0.1, 0.2, 0.95, 0.3]);
        let report = policy.apply_layer(&mut cache, &ctx).unwrap();
        assert_eq!(report.chunks_at(Bitwidth::Fp16), 1);
        let fp16_chunk = cache
            .chunks()
            .iter()
            .find(|c| c.bitwidth() == Bitwidth::Fp16)
            .unwrap();
        assert_eq!(fp16_chunk.logical_index(), 2);
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let mut cache = layer_cache(4 * 32, 32, 11);
        let policy = CocktailPolicy::new(CocktailConfig::default()).unwrap();
        let bad_scores = PolicyContext::new(vec![], "q").with_scores(vec![0.1, 0.2]);
        assert!(policy.apply_layer(&mut cache, &bad_scores).is_err());
        let bad_texts = PolicyContext::new(vec!["one".into()], "q");
        assert!(policy.apply_layer(&mut cache, &bad_texts).is_err());
    }

    #[test]
    fn whole_model_apply_scores_once_and_covers_all_layers() {
        let mut cache = ChunkedKvCache::new(2, 2);
        for layer in 0..2 {
            for head in 0..2 {
                cache.set(
                    layer,
                    head,
                    layer_cache(6 * 32, 32, (layer * 2 + head) as u64),
                );
            }
        }
        let (texts, query) = needle_context(6, 4);
        let policy = CocktailPolicy::new(CocktailConfig::default()).unwrap();
        let report = policy
            .apply(&mut cache, &PolicyContext::new(texts, query))
            .unwrap();
        // 6 chunks × 4 slots.
        assert_eq!(report.total_chunks(), 24);
        assert!(cache.total_storage_bytes() < cache.total_fp16_reference_bytes());
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let bad = CocktailConfig {
            alpha: 2.0,
            ..CocktailConfig::default()
        };
        assert!(CocktailPolicy::new(bad).is_err());
    }
}
