//! Configuration of the Cocktail method.

use crate::error::CocktailError;
use cocktail_retrieval::EncoderKind;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the Cocktail method.
///
/// The defaults are the paper's headline configuration: α = 0.6, β = 0.1,
/// chunk size 32, quantization group size 32, Facebook-Contriever as the
/// chunk/query encoder, and both modules enabled.
///
/// # Example
///
/// ```
/// use cocktail_core::CocktailConfig;
///
/// # fn main() -> Result<(), cocktail_core::CocktailError> {
/// let config = CocktailConfig::default().with_alpha(0.4)?.with_beta(0.2)?;
/// assert_eq!(config.alpha, 0.4);
/// assert_eq!(config.chunk_size, 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CocktailConfig {
    /// Fraction of the similarity-score range below which chunks are
    /// quantized to INT2 (Eq. 2: `T_low = s_min + (s_max − s_min)·α`).
    pub alpha: f32,
    /// Fraction of the similarity-score range above which chunks keep FP16
    /// (Eq. 3: `T_high = s_max − (s_max − s_min)·β`).
    pub beta: f32,
    /// Context chunk size in tokens.
    pub chunk_size: usize,
    /// Group size of the integer quantizer.
    pub group_size: usize,
    /// The chunk/query encoder used by the quantization search.
    pub encoder: EncoderKind,
    /// Module I switch: when `false`, relevance search is skipped and the
    /// bitwidth assignment falls back to a fixed, relevance-blind pattern
    /// (the paper's "w/o Module I" ablation).
    pub enable_search: bool,
    /// Module II switch: when `false`, chunks are quantized in logical
    /// order without reordering (the paper's "w/o Module II" ablation).
    pub enable_reorder: bool,
}

impl CocktailConfig {
    /// Creates the paper's headline configuration.
    pub fn paper_default() -> Self {
        Self {
            alpha: 0.6,
            beta: 0.1,
            chunk_size: 32,
            group_size: 32,
            encoder: EncoderKind::Contriever,
            enable_search: true,
            enable_reorder: true,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError::InvalidConfig`] if α or β lie outside
    /// `[0, 1]`, their thresholds cross (`α + β > 1`), or a size is zero.
    pub fn validate(&self) -> Result<(), CocktailError> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(CocktailError::InvalidConfig(format!(
                "alpha {} must be in [0, 1]",
                self.alpha
            )));
        }
        if !(0.0..=1.0).contains(&self.beta) {
            return Err(CocktailError::InvalidConfig(format!(
                "beta {} must be in [0, 1]",
                self.beta
            )));
        }
        if self.alpha + self.beta > 1.0 + 1e-6 {
            return Err(CocktailError::InvalidConfig(format!(
                "alpha {} + beta {} exceeds 1, so T_low would be above T_high",
                self.alpha, self.beta
            )));
        }
        if self.chunk_size == 0 {
            return Err(CocktailError::InvalidConfig(
                "chunk size must be nonzero".into(),
            ));
        }
        if self.group_size == 0 {
            return Err(CocktailError::InvalidConfig(
                "group size must be nonzero".into(),
            ));
        }
        Ok(())
    }

    /// Returns a copy with a different α.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError::InvalidConfig`] if the result is invalid.
    pub fn with_alpha(mut self, alpha: f32) -> Result<Self, CocktailError> {
        self.alpha = alpha;
        self.validate()?;
        Ok(self)
    }

    /// Returns a copy with a different β.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError::InvalidConfig`] if the result is invalid.
    pub fn with_beta(mut self, beta: f32) -> Result<Self, CocktailError> {
        self.beta = beta;
        self.validate()?;
        Ok(self)
    }

    /// Returns a copy with a different chunk size.
    ///
    /// # Errors
    ///
    /// Returns [`CocktailError::InvalidConfig`] if the result is invalid.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Result<Self, CocktailError> {
        self.chunk_size = chunk_size;
        self.validate()?;
        Ok(self)
    }

    /// Returns a copy with a different encoder.
    pub fn with_encoder(mut self, encoder: EncoderKind) -> Self {
        self.encoder = encoder;
        self
    }

    /// Returns a copy with Module I (quantization search) toggled.
    pub fn with_search(mut self, enable: bool) -> Self {
        self.enable_search = enable;
        self
    }

    /// Returns a copy with Module II (reordering) toggled.
    pub fn with_reorder(mut self, enable: bool) -> Self {
        self.enable_reorder = enable;
        self
    }
}

impl Default for CocktailConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_headline() {
        let c = CocktailConfig::default();
        assert_eq!(c.alpha, 0.6);
        assert_eq!(c.beta, 0.1);
        assert_eq!(c.chunk_size, 32);
        assert_eq!(c.encoder, EncoderKind::Contriever);
        assert!(c.enable_search && c.enable_reorder);
        c.validate().unwrap();
    }

    #[test]
    fn rejects_out_of_range_alpha_beta() {
        assert!(CocktailConfig::default().with_alpha(1.2).is_err());
        assert!(CocktailConfig::default().with_beta(-0.1).is_err());
    }

    #[test]
    fn rejects_crossing_thresholds() {
        let config = CocktailConfig {
            alpha: 0.7,
            beta: 0.7,
            ..CocktailConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn rejects_zero_sizes() {
        let config = CocktailConfig {
            chunk_size: 0,
            ..CocktailConfig::default()
        };
        assert!(config.validate().is_err());
        let config = CocktailConfig {
            group_size: 0,
            ..CocktailConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn builders_replace_single_fields() {
        let c = CocktailConfig::default()
            .with_alpha(0.3)
            .unwrap()
            .with_beta(0.2)
            .unwrap()
            .with_chunk_size(64)
            .unwrap()
            .with_encoder(EncoderKind::Bm25)
            .with_search(false)
            .with_reorder(false);
        assert_eq!(c.alpha, 0.3);
        assert_eq!(c.beta, 0.2);
        assert_eq!(c.chunk_size, 64);
        assert_eq!(c.encoder, EncoderKind::Bm25);
        assert!(!c.enable_search && !c.enable_reorder);
    }
}
