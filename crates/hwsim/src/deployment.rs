//! The deployment model: GPU memory, TPOT and throughput estimates.

use crate::profile::{KvCacheProfile, SearchKind};
use crate::spec::AcceleratorSpec;
use cocktail_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// Shape of one inference request: how long the context is and how many
/// tokens are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestShape {
    /// Context (prompt) length in tokens.
    pub context_len: usize,
    /// Number of generated output tokens (the paper uses 128).
    pub output_len: usize,
}

impl RequestShape {
    /// Creates a request shape.
    pub fn new(context_len: usize, output_len: usize) -> Self {
        Self {
            context_len,
            output_len,
        }
    }

    /// The paper's output length (128 tokens) with the given context.
    pub fn with_context(context_len: usize) -> Self {
        Self::new(context_len, 128)
    }
}

/// Additive components of the per-decode-step latency (TPOT).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Time to stream the model weights from HBM.
    pub weight_read_s: f64,
    /// Time to stream the (compressed) KV cache from HBM, including the
    /// cache-line inefficiency of non-contiguous layouts.
    pub kv_read_s: f64,
    /// Time spent dequantizing integer KV data.
    pub dequant_s: f64,
    /// Kernel-launch overhead (one launch per contiguous precision block
    /// per layer, or per chunk run when the layout is interleaved).
    pub kernel_launch_s: f64,
    /// Extra gather cost for sparse FP16 outlier patches (KVQuant).
    pub outlier_gather_s: f64,
}

impl LatencyBreakdown {
    /// Total decode-step latency in seconds.
    pub fn total_s(&self) -> f64 {
        self.weight_read_s
            + self.kv_read_s
            + self.dequant_s
            + self.kernel_launch_s
            + self.outlier_gather_s
    }

    /// Total decode-step latency in microseconds (the unit of Table V).
    pub fn total_us(&self) -> f64 {
        self.total_s() * 1e6
    }
}

/// One point of the throughput-versus-batch sweep (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Batch size (number of concurrent requests).
    pub batch: usize,
    /// Estimated GPU memory at this batch size, in bytes.
    pub memory_bytes: usize,
    /// Whether the batch fits in usable HBM; when `false` the point is an
    /// out-of-memory point and `tokens_per_s` is `None` (the interrupted
    /// lines of Figure 6).
    pub fits: bool,
    /// Generated tokens per second across the whole batch.
    pub tokens_per_s: Option<f64>,
}

/// Combines an accelerator, a full-size model dimension sheet and a request
/// shape into memory / latency / throughput estimates for any
/// [`KvCacheProfile`].
///
/// # Example
///
/// ```
/// use cocktail_hwsim::{AcceleratorSpec, DeploymentModel, KvCacheProfile, RequestShape};
/// use cocktail_model::ModelProfile;
///
/// let model = DeploymentModel::new(
///     AcceleratorSpec::a800(),
///     ModelProfile::llama2_7b_sim().full().clone(),
///     RequestShape::with_context(3968),
/// );
/// let fp16 = model.tpot(&KvCacheProfile::fp16(), 16);
/// let cocktail = model.tpot(&KvCacheProfile::cocktail_default(), 16);
/// assert!(cocktail.total_s() < fp16.total_s());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentModel {
    spec: AcceleratorSpec,
    model: ModelConfig,
    request: RequestShape,
}

impl DeploymentModel {
    /// Creates a deployment model.
    pub fn new(spec: AcceleratorSpec, model: ModelConfig, request: RequestShape) -> Self {
        Self {
            spec,
            model,
            request,
        }
    }

    /// The accelerator specification.
    pub fn spec(&self) -> &AcceleratorSpec {
        &self.spec
    }

    /// The model dimension sheet.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The request shape.
    pub fn request(&self) -> &RequestShape {
        &self.request
    }

    /// Number of KV scalars cached per token (keys + values, all layers and
    /// KV heads).
    pub fn kv_values_per_token(&self) -> usize {
        2 * self.model.n_layers * self.model.n_kv_heads * self.model.head_dim()
    }

    /// KV-cache bytes for the *context* portion of one request under the
    /// given profile.
    pub fn context_kv_bytes(&self, profile: &KvCacheProfile) -> f64 {
        self.kv_values_per_token() as f64
            * self.request.context_len as f64
            * profile.bytes_per_value()
    }

    /// KV-cache bytes for the generated output tokens (always FP16, as in
    /// the paper).
    pub fn output_kv_bytes(&self, generated_so_far: usize) -> f64 {
        self.kv_values_per_token() as f64 * generated_so_far as f64 * 2.0
    }

    /// Peak activation workspace per sequence (a small prefill-dominated
    /// term).
    fn activation_bytes_per_seq(&self) -> f64 {
        // Hidden states plus attention workspace for the longest sequence,
        // double-buffered in FP16.
        4.0 * self.request.context_len as f64 * self.model.hidden_dim as f64 * 2.0
    }

    /// Estimated total GPU memory for a batch of requests under the given
    /// cache profile (weights + KV cache + activations).
    pub fn gpu_memory_bytes(&self, profile: &KvCacheProfile, batch: usize) -> usize {
        let weights = self.model.weight_bytes_fp16() as f64;
        let per_seq = self.context_kv_bytes(profile)
            + self.output_kv_bytes(self.request.output_len)
            + self.activation_bytes_per_seq();
        (weights + batch as f64 * per_seq) as usize
    }

    /// Whether a batch of requests fits in usable HBM.
    pub fn fits(&self, profile: &KvCacheProfile, batch: usize) -> bool {
        self.gpu_memory_bytes(profile, batch) <= self.spec.usable_capacity_bytes()
    }

    /// The largest batch size that still fits (linear search up to `limit`).
    pub fn max_batch(&self, profile: &KvCacheProfile, limit: usize) -> usize {
        (1..=limit)
            .take_while(|&b| self.fits(profile, b))
            .last()
            .unwrap_or(0)
    }

    /// Bitwidth-search latency for a whole batch of requests.
    ///
    /// Cocktail's chunk-level search is one batched pass of a small encoder:
    /// a fixed setup cost plus a cheap per-chunk term, so it amortizes as
    /// the batch grows. KVQuant's token-level search scans every cached
    /// token of every layer per request and scales linearly with the batch,
    /// which is why its throughput never catches up (Figure 6).
    pub fn search_latency_s(&self, profile: &KvCacheProfile, batch: usize) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        match profile.search {
            SearchKind::None => 0.0,
            SearchKind::ChunkLevel => {
                let chunks = (self.request.context_len / profile.group_size.max(1)) as f64;
                self.spec.search_setup_s
                    + batch as f64 * (chunks + 1.0) / self.spec.encoder_chunks_per_s
            }
            SearchKind::TokenLevel => {
                let token_layer = self.request.context_len as f64 * self.model.n_layers as f64;
                batch as f64 * token_layer / self.spec.token_scan_per_s
            }
        }
    }

    /// Decode-step latency (TPOT) for a batch of requests whose caches all
    /// follow the given profile. The decode output tokens accumulated so
    /// far are approximated by half the output length.
    pub fn tpot(&self, profile: &KvCacheProfile, batch: usize) -> LatencyBreakdown {
        let bw = self.spec.hbm_bandwidth_bytes_per_s;
        let weight_read_s = self.model.weight_bytes_fp16() as f64 / bw;

        let context_bytes = self.context_kv_bytes(profile);
        let output_bytes = self.output_kv_bytes(self.request.output_len / 2);
        // Non-contiguous mixed-precision layouts touch extra cache lines at
        // every precision boundary; charge a flat read-amplification factor
        // derived from one extra cache line per chunk boundary.
        let layout_amplification = if profile.grouped_layout || profile.precision_levels() <= 1 {
            1.0
        } else {
            let chunk_bytes = profile.group_size as f64
                * self.kv_values_per_token() as f64
                * profile.bytes_per_value()
                / self.request.context_len.max(1) as f64
                * profile.group_size as f64;
            let per_chunk_waste = self.spec.cache_line_bytes as f64 / chunk_bytes.max(1.0);
            1.0 + per_chunk_waste.min(0.25)
        };
        let kv_read_s = batch as f64 * (context_bytes * layout_amplification + output_bytes) / bw;

        // Dequantization: proportional to the number of quantized values,
        // weighted by how many bits each value unpacks.
        let values = self.kv_values_per_token() as f64 * self.request.context_len as f64;
        let mut dequant_weight = 0.0;
        for (&bits, &fraction) in &profile.fractions {
            if bits.is_integer() {
                dequant_weight += fraction * bits.bits() as f64 / 4.0;
            }
        }
        let dequant_s = batch as f64 * values * dequant_weight / self.spec.dequant_elems_per_s;

        // Kernel launches: one fused GEMM pair (QKᵀ and AV) per contiguous
        // precision run per layer.
        let runs_per_layer = if profile.grouped_layout {
            profile.precision_levels() as f64
        } else {
            let chunks = (self.request.context_len / profile.group_size.max(1)) as f64;
            let mix: f64 = profile.fractions.values().map(|f| f * f).sum();
            (chunks * (1.0 - mix)).max(1.0) + 1.0
        };
        let kernel_launch_s =
            2.0 * runs_per_layer * self.model.n_layers as f64 * self.spec.kernel_launch_s;

        // Sparse outlier patches require a gather pass over their tokens.
        let outlier_values = values * profile.outlier_fraction;
        let outlier_gather_s = batch as f64 * outlier_values * 4.0 / self.spec.dequant_elems_per_s;

        LatencyBreakdown {
            weight_read_s,
            kv_read_s,
            dequant_s,
            kernel_launch_s,
            outlier_gather_s,
        }
    }

    /// Prefill latency estimate (compute-bound): `2 · params · tokens / FLOPs`.
    pub fn prefill_latency_s(&self, batch: usize) -> f64 {
        2.0 * self.model.parameter_count() as f64 * self.request.context_len as f64 * batch as f64
            / self.spec.fp16_flops_per_s
    }

    /// End-to-end throughput (generated tokens per second) for a batch of
    /// identical requests, or an OOM point when the batch does not fit.
    pub fn throughput(&self, profile: &KvCacheProfile, batch: usize) -> ThroughputPoint {
        let memory_bytes = self.gpu_memory_bytes(profile, batch);
        if !self.fits(profile, batch) || batch == 0 {
            return ThroughputPoint {
                batch,
                memory_bytes,
                fits: false,
                tokens_per_s: None,
            };
        }
        let search_s = self.search_latency_s(profile, batch);
        let prefill_s = self.prefill_latency_s(batch);
        let decode_s = self.request.output_len as f64 * self.tpot(profile, batch).total_s();
        let total_s = search_s + prefill_s + decode_s;
        let tokens = (batch * self.request.output_len) as f64;
        ThroughputPoint {
            batch,
            memory_bytes,
            fits: true,
            tokens_per_s: Some(tokens / total_s),
        }
    }

    /// Runs the throughput sweep of Figure 6 over the given batch sizes.
    pub fn throughput_sweep(
        &self,
        profile: &KvCacheProfile,
        batches: &[usize],
    ) -> Vec<ThroughputPoint> {
        batches
            .iter()
            .map(|&b| self.throughput(profile, b))
            .collect()
    }

    /// Convenience: GPU memory in GiB.
    pub fn gpu_memory_gib(&self, profile: &KvCacheProfile, batch: usize) -> f64 {
        self.gpu_memory_bytes(profile, batch) as f64 / (1u64 << 30) as f64
    }

    /// An N-replica fleet of this deployment: `replicas` identical
    /// accelerators, each running its own engine with its own KV budget.
    ///
    /// # Panics
    ///
    /// Panics when `replicas` is zero.
    pub fn replicated(&self, replicas: usize) -> ReplicatedDeployment {
        assert!(replicas > 0, "a fleet needs at least one replica");
        ReplicatedDeployment {
            model: self.clone(),
            replicas,
        }
    }
}

/// One point of the fleet-level throughput prediction: every replica runs
/// the same per-replica batch, and fleet tokens/s is the per-replica rate
/// times the replica count (replicas share nothing, so scaling is linear
/// in the model — the `replica_affinity` experiment checks measured
/// multi-replica serving against this).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetThroughput {
    /// Number of replicas in the fleet.
    pub replicas: usize,
    /// Concurrent requests per replica.
    pub per_replica_batch: usize,
    /// Generated tokens per second of one replica at that batch.
    pub per_replica_tokens_per_s: f64,
    /// Aggregate generated tokens per second across the fleet.
    pub tokens_per_s: f64,
}

/// N identical replicas of a [`DeploymentModel`], produced by
/// [`DeploymentModel::replicated`].
///
/// # Example
///
/// ```
/// use cocktail_hwsim::{AcceleratorSpec, DeploymentModel, KvCacheProfile, RequestShape};
/// use cocktail_model::ModelProfile;
///
/// let model = DeploymentModel::new(
///     AcceleratorSpec::a800(),
///     ModelProfile::llama2_7b_sim().full().clone(),
///     RequestShape::with_context(3968),
/// );
/// let fleet = model.replicated(4).max_throughput(&KvCacheProfile::cocktail_default(), 64);
/// let solo = model.replicated(1).max_throughput(&KvCacheProfile::cocktail_default(), 64);
/// assert!((fleet.unwrap().tokens_per_s / solo.unwrap().tokens_per_s - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedDeployment {
    model: DeploymentModel,
    replicas: usize,
}

impl ReplicatedDeployment {
    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The per-replica deployment model.
    pub fn per_replica(&self) -> &DeploymentModel {
        &self.model
    }

    /// Fleet throughput with every replica at `batch` concurrent
    /// requests, or `None` when that batch does not fit one replica.
    pub fn throughput(&self, profile: &KvCacheProfile, batch: usize) -> Option<FleetThroughput> {
        let point = self.model.throughput(profile, batch);
        let per_replica = point.tokens_per_s?;
        Some(FleetThroughput {
            replicas: self.replicas,
            per_replica_batch: batch,
            per_replica_tokens_per_s: per_replica,
            tokens_per_s: per_replica * self.replicas as f64,
        })
    }

    /// The best fleet throughput over per-replica batches up to `limit`
    /// (at the per-replica max batch, since per-replica throughput grows
    /// with batch until OOM), or `None` when even batch 1 does not fit.
    pub fn max_throughput(
        &self,
        profile: &KvCacheProfile,
        limit: usize,
    ) -> Option<FleetThroughput> {
        let batch = self.model.max_batch(profile, limit);
        self.throughput(profile, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_model::ModelProfile;

    fn model_7b(context: usize) -> DeploymentModel {
        DeploymentModel::new(
            AcceleratorSpec::a800(),
            ModelProfile::llama2_7b_sim().full().clone(),
            RequestShape::with_context(context),
        )
    }

    fn model_longchat(context: usize) -> DeploymentModel {
        DeploymentModel::new(
            AcceleratorSpec::a800(),
            ModelProfile::longchat_7b_sim().full().clone(),
            RequestShape::with_context(context),
        )
    }

    #[test]
    fn fp16_memory_for_llama2_7b_is_plausible() {
        let m = model_7b(3968);
        let gib = m.gpu_memory_gib(&KvCacheProfile::fp16(), 1);
        // Weights ~12.6 GiB + ~2 GiB KV + activations: Table V reports
        // 17.13 GB for this setting; accept a generous band.
        assert!((13.0..20.0).contains(&gib), "got {gib:.2} GiB");
    }

    #[test]
    fn cocktail_reduces_memory_within_the_papers_band() {
        // Figure 4: 12–42 % GPU-memory reduction versus FP16 across the four
        // models; short-context models sit at the low end, 32K-context
        // models at the high end.
        let short = model_7b(3968);
        let fp16 = short.gpu_memory_gib(&KvCacheProfile::fp16(), 1);
        let cocktail = short.gpu_memory_gib(&KvCacheProfile::cocktail_default(), 1);
        let reduction_short = (fp16 - cocktail) / fp16;
        assert!(
            (0.05..0.45).contains(&reduction_short),
            "short-context reduction {reduction_short:.2}"
        );

        let long = model_longchat(32 * 1024 - 128);
        let fp16 = long.gpu_memory_gib(&KvCacheProfile::fp16(), 1);
        let cocktail = long.gpu_memory_gib(&KvCacheProfile::cocktail_default(), 1);
        let reduction_long = (fp16 - cocktail) / fp16;
        assert!(
            reduction_long > reduction_short,
            "long contexts must benefit more: {reduction_long:.2} vs {reduction_short:.2}"
        );
        assert!(reduction_long < 0.6);
    }

    #[test]
    fn without_reorder_memory_exceeds_fp16() {
        // Table V: w/o Module II uses more memory than even the FP16
        // baseline because packed sub-FP16 storage is lost.
        let m = model_7b(3968);
        let fp16 = m.gpu_memory_bytes(&KvCacheProfile::fp16(), 1);
        let no_reorder = m.gpu_memory_bytes(&KvCacheProfile::cocktail_without_reorder(), 1);
        let cocktail = m.gpu_memory_bytes(&KvCacheProfile::cocktail_default(), 1);
        assert!(no_reorder > fp16);
        assert!(cocktail < fp16);
    }

    #[test]
    fn tpot_ordering_matches_figure_5() {
        let m = model_7b(3968);
        let batch = 16;
        let fp16 = m.tpot(&KvCacheProfile::fp16(), batch).total_s();
        let atom = m.tpot(&KvCacheProfile::atom_int4(), batch).total_s();
        let kvq = m.tpot(&KvCacheProfile::kvquant_default(), batch).total_s();
        let cocktail = m.tpot(&KvCacheProfile::cocktail_default(), batch).total_s();
        let no_reorder = m
            .tpot(&KvCacheProfile::cocktail_without_reorder(), batch)
            .total_s();
        assert!(cocktail < atom, "cocktail {cocktail} vs atom {atom}");
        assert!(atom < fp16);
        assert!(kvq < fp16 && kvq >= atom);
        assert!(no_reorder > cocktail, "reordering must help TPOT");
        let reduction = (fp16 - cocktail) / fp16;
        assert!(
            (0.2..0.6).contains(&reduction),
            "TPOT reduction {reduction:.2} outside the paper's 32–52 % band (with slack)"
        );
    }

    #[test]
    fn search_latency_ordering() {
        let m = model_7b(3968);
        let none = m.search_latency_s(&KvCacheProfile::atom_int4(), 1);
        let chunk = m.search_latency_s(&KvCacheProfile::cocktail_default(), 1);
        let token = m.search_latency_s(&KvCacheProfile::kvquant_default(), 1);
        assert_eq!(none, 0.0);
        assert!(chunk > 0.0);
        assert!(
            token > chunk,
            "token-level search must cost more than chunk-level"
        );
        // Chunk-level search amortizes with the batch; token-level does not.
        let chunk_64 = m.search_latency_s(&KvCacheProfile::cocktail_default(), 64);
        let token_64 = m.search_latency_s(&KvCacheProfile::kvquant_default(), 64);
        assert!(
            chunk_64 / 64.0 < chunk,
            "per-request chunk search must shrink with batch"
        );
        assert!((token_64 / 64.0 - token).abs() / token < 1e-6);
    }

    #[test]
    fn throughput_crossover_between_cocktail_and_uniform() {
        // Figure 6: at batch 1 Cocktail's search overhead makes it slightly
        // slower than uniform quantization; at large batch its lower TPOT
        // wins.
        let m = model_7b(3968);
        let cocktail = KvCacheProfile::cocktail_default();
        let atom = KvCacheProfile::atom_int4();
        let small_c = m.throughput(&cocktail, 1).tokens_per_s.unwrap();
        let small_a = m.throughput(&atom, 1).tokens_per_s.unwrap();
        assert!(
            small_c <= small_a,
            "at batch 1: cocktail {small_c} vs atom {small_a}"
        );
        let big_batch = m.max_batch(&cocktail, 512).min(m.max_batch(&atom, 512));
        assert!(big_batch > 8);
        let big_c = m.throughput(&cocktail, big_batch).tokens_per_s.unwrap();
        let big_a = m.throughput(&atom, big_batch).tokens_per_s.unwrap();
        assert!(
            big_c > big_a,
            "at batch {big_batch}: cocktail {big_c} vs atom {big_a}"
        );
    }

    #[test]
    fn cocktail_throughput_always_beats_kvquant() {
        let m = model_7b(3968);
        let cocktail = KvCacheProfile::cocktail_default();
        let kvq = KvCacheProfile::kvquant_default();
        for batch in [1usize, 4, 16, 64] {
            let c = m.throughput(&cocktail, batch);
            let k = m.throughput(&kvq, batch);
            if let (Some(c), Some(k)) = (c.tokens_per_s, k.tokens_per_s) {
                assert!(c > k, "batch {batch}: cocktail {c} vs kvquant {k}");
            }
        }
    }

    #[test]
    fn oom_appears_first_for_fp16() {
        let m = model_longchat(32 * 1024 - 128);
        let fp16_max = m.max_batch(&KvCacheProfile::fp16(), 512);
        let atom_max = m.max_batch(&KvCacheProfile::atom_int4(), 512);
        let cocktail_max = m.max_batch(&KvCacheProfile::cocktail_default(), 512);
        assert!(fp16_max < atom_max, "fp16 {fp16_max} vs atom {atom_max}");
        assert!(fp16_max < cocktail_max);
        let oom_point = m.throughput(&KvCacheProfile::fp16(), fp16_max + 1);
        assert!(!oom_point.fits);
        assert!(oom_point.tokens_per_s.is_none());
    }

    #[test]
    fn throughput_increases_with_batch_until_oom() {
        let m = model_7b(3968);
        let profile = KvCacheProfile::cocktail_default();
        let sweep = m.throughput_sweep(&profile, &[1, 2, 4, 8, 16, 32]);
        let values: Vec<f64> = sweep.iter().filter_map(|p| p.tokens_per_s).collect();
        assert!(values.len() >= 4);
        assert!(values.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn a_single_replica_fleet_matches_the_base_model() {
        let m = model_7b(3968);
        let profile = KvCacheProfile::cocktail_default();
        let fleet = m.replicated(1).throughput(&profile, 8).unwrap();
        let base = m.throughput(&profile, 8).tokens_per_s.unwrap();
        assert_eq!(fleet.replicas, 1);
        assert_eq!(fleet.per_replica_batch, 8);
        assert!((fleet.per_replica_tokens_per_s - base).abs() < 1e-12);
        assert!((fleet.tokens_per_s - base).abs() < 1e-12);
    }

    #[test]
    fn fleet_throughput_scales_linearly_and_monotonically_in_replicas() {
        let m = model_7b(3968);
        let profile = KvCacheProfile::cocktail_default();
        let solo = m.replicated(1).max_throughput(&profile, 64).unwrap();
        let trio = m.replicated(3).max_throughput(&profile, 64).unwrap();
        assert_eq!(trio.per_replica_batch, solo.per_replica_batch);
        assert!((trio.tokens_per_s / solo.tokens_per_s - 3.0).abs() < 1e-9);
        let duo = m.replicated(2).max_throughput(&profile, 64).unwrap();
        assert!(solo.tokens_per_s < duo.tokens_per_s && duo.tokens_per_s < trio.tokens_per_s);
    }

    #[test]
    fn an_oom_per_replica_batch_yields_no_fleet_point() {
        let m = model_7b(3968);
        let profile = KvCacheProfile::fp16();
        let max = m.max_batch(&profile, 512);
        assert!(m.replicated(4).throughput(&profile, max + 1).is_none());
        assert!(m.replicated(4).throughput(&profile, max).is_some());
    }

    #[test]
    fn gqa_model_uses_less_kv_memory() {
        let mha = model_longchat(31 * 1024);
        let gqa = DeploymentModel::new(
            AcceleratorSpec::a800(),
            ModelProfile::mistral_7b_sim().full().clone(),
            RequestShape::with_context(31 * 1024),
        );
        let profile = KvCacheProfile::fp16();
        assert!(gqa.context_kv_bytes(&profile) < mha.context_kv_bytes(&profile));
    }
}
