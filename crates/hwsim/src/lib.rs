//! Analytic accelerator model for KV-cache quantization experiments.
//!
//! The paper's memory, time-per-output-token (TPOT) and throughput figures
//! (Figures 4–6, Table V) were measured on an NVIDIA A800. This crate
//! models the same quantities from first principles so the experiments can
//! be regenerated without the hardware:
//!
//! * [`AcceleratorSpec`] — capacity, bandwidth, cache-line size and kernel
//!   overhead constants of the accelerator (an A800-like preset is
//!   provided).
//! * [`KvCacheProfile`] — what a quantization policy did to the cache, in
//!   hardware-relevant terms: the fraction of context tokens at each
//!   bitwidth, the outlier fraction, whether same-precision data is
//!   physically contiguous (Module II) and what kind of bitwidth search ran.
//! * [`DeploymentModel`] — combines an accelerator, a full-size model
//!   dimension sheet and a request shape (context length, output length,
//!   batch size) and produces GPU memory, TPOT and throughput estimates,
//!   including out-of-memory detection for the batch sweep of Figure 6.
//!
//! The model is first-order and documented in `DESIGN.md`: decode latency
//! is dominated by reading weights plus the KV cache from HBM, with
//! additive penalties for dequantization work, per-precision kernel
//! switches, token-level search and non-contiguous mixed-precision layouts.
//! Absolute numbers are not expected to match the paper's testbed; the
//! relative ordering and trends are.
//!
//! # Example
//!
//! ```
//! use cocktail_hwsim::{AcceleratorSpec, DeploymentModel, KvCacheProfile, RequestShape};
//! use cocktail_model::ModelProfile;
//!
//! let model = DeploymentModel::new(
//!     AcceleratorSpec::a800(),
//!     ModelProfile::llama2_7b_sim().full().clone(),
//!     RequestShape::new(4096, 128),
//! );
//! let fp16 = model.gpu_memory_bytes(&KvCacheProfile::fp16(), 1);
//! let cocktail = model.gpu_memory_bytes(&KvCacheProfile::cocktail_default(), 1);
//! assert!(cocktail < fp16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deployment;
mod profile;
mod spec;

pub use deployment::{
    DeploymentModel, FleetThroughput, LatencyBreakdown, ReplicatedDeployment, RequestShape,
    ThroughputPoint,
};
pub use profile::{KvCacheProfile, SearchKind};
pub use spec::AcceleratorSpec;
