//! Accelerator hardware parameters.

use serde::{Deserialize, Serialize};

/// First-order hardware description of the accelerator running inference.
///
/// The defaults for [`AcceleratorSpec::a800`] follow the public datasheet
/// numbers of the NVIDIA A800 80GB (the GPU used in the paper) with
/// conservative achievable-bandwidth derating, plus a handful of kernel
/// overhead constants that are documented where they are used in
/// [`crate::DeploymentModel`].
///
/// # Example
///
/// ```
/// let spec = cocktail_hwsim::AcceleratorSpec::a800();
/// assert_eq!(spec.hbm_capacity_bytes, 80 * 1024 * 1024 * 1024);
/// assert!(spec.hbm_bandwidth_bytes_per_s > 1.0e12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorSpec {
    /// Human-readable device name.
    pub name: String,
    /// HBM capacity in bytes.
    pub hbm_capacity_bytes: usize,
    /// Achievable HBM bandwidth in bytes per second.
    pub hbm_bandwidth_bytes_per_s: f64,
    /// Cache-line / minimum-transaction size in bytes.
    pub cache_line_bytes: usize,
    /// SIMD/allocation granularity in bytes for contiguous kernel buffers.
    pub simd_width_bytes: usize,
    /// Achievable FP16 compute throughput in FLOP/s (used for the
    /// prefill-phase estimate).
    pub fp16_flops_per_s: f64,
    /// Integer dequantization throughput for INT4 data, in elements per
    /// second (INT2 unpacks proportionally faster, INT8 slower).
    pub dequant_elems_per_s: f64,
    /// Fixed kernel-launch overhead in seconds, charged once per GEMM
    /// kernel (one per contiguous precision block).
    pub kernel_launch_s: f64,
    /// Fixed setup latency of one batched chunk-level search call
    /// (tokenization, host/device transfer, small-encoder launch), charged
    /// once per batch.
    pub search_setup_s: f64,
    /// Throughput of the retrieval encoder used by chunk-level search, in
    /// chunk embeddings per second once the batched call is running.
    pub encoder_chunks_per_s: f64,
    /// Throughput of a token-level importance scan (KVQuant-style search),
    /// in token·layer units per second.
    pub token_scan_per_s: f64,
    /// Fraction of HBM reserved for activations, workspace and fragmentation
    /// (not usable by weights or KV cache).
    pub reserved_fraction: f64,
}

impl AcceleratorSpec {
    /// NVIDIA A800 80GB preset (the paper's testbed).
    pub fn a800() -> Self {
        Self {
            name: "NVIDIA A800 80GB".to_string(),
            hbm_capacity_bytes: 80 * 1024 * 1024 * 1024,
            // 2039 GB/s peak, ~80 % achievable on large streaming reads.
            hbm_bandwidth_bytes_per_s: 1.63e12,
            cache_line_bytes: 128,
            simd_width_bytes: 32,
            fp16_flops_per_s: 2.5e14,
            dequant_elems_per_s: 4.0e12,
            kernel_launch_s: 2.0e-6,
            search_setup_s: 0.05,
            encoder_chunks_per_s: 100_000.0,
            token_scan_per_s: 1.0e6,
            reserved_fraction: 0.08,
        }
    }

    /// A smaller 40 GB accelerator, useful for OOM-sensitivity ablations.
    pub fn a100_40g() -> Self {
        Self {
            name: "NVIDIA A100 40GB".to_string(),
            hbm_capacity_bytes: 40 * 1024 * 1024 * 1024,
            hbm_bandwidth_bytes_per_s: 1.25e12,
            fp16_flops_per_s: 2.4e14,
            ..Self::a800()
        }
    }

    /// Usable HBM bytes after the reserved fraction.
    pub fn usable_capacity_bytes(&self) -> usize {
        (self.hbm_capacity_bytes as f64 * (1.0 - self.reserved_fraction)) as usize
    }
}

impl Default for AcceleratorSpec {
    fn default() -> Self {
        Self::a800()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a800_matches_datasheet_scale() {
        let spec = AcceleratorSpec::a800();
        assert_eq!(spec.hbm_capacity_bytes, 80 << 30);
        assert!(spec.hbm_bandwidth_bytes_per_s > 1.5e12);
        assert!(spec.usable_capacity_bytes() < spec.hbm_capacity_bytes);
    }

    #[test]
    fn a100_40g_is_smaller() {
        let a800 = AcceleratorSpec::a800();
        let a100 = AcceleratorSpec::a100_40g();
        assert!(a100.hbm_capacity_bytes < a800.hbm_capacity_bytes);
        assert!(a100.hbm_bandwidth_bytes_per_s < a800.hbm_bandwidth_bytes_per_s);
        assert_eq!(a100.cache_line_bytes, a800.cache_line_bytes);
    }

    #[test]
    fn default_is_a800() {
        assert_eq!(AcceleratorSpec::default(), AcceleratorSpec::a800());
    }
}
