//! Hardware-relevant summary of what a quantization policy did.

use cocktail_quant::Bitwidth;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What kind of bitwidth search a method performs per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchKind {
    /// No search (FP16 and the uniform baselines).
    None,
    /// One encoder pass per context chunk plus one for the query
    /// (Cocktail's chunk-level search).
    ChunkLevel,
    /// A scan over every token of every layer (KVQuant's token-level
    /// search).
    TokenLevel,
}

/// Hardware-relevant description of a compressed KV cache: the mix of
/// precisions, the layout, and the search the method ran.
///
/// # Example
///
/// ```
/// use cocktail_hwsim::KvCacheProfile;
/// use cocktail_quant::Bitwidth;
///
/// let profile = KvCacheProfile::cocktail_default();
/// assert!(profile.fraction(Bitwidth::Int2) > 0.5);
/// assert!((profile.mean_bits_per_value() - 16.0).abs() > 1.0); // well below FP16
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvCacheProfile {
    /// Method name (used only for labelling output).
    pub method: String,
    /// Fraction of context tokens stored at each bitwidth (must sum to 1).
    pub fractions: BTreeMap<Bitwidth, f64>,
    /// Fraction of context tokens additionally kept as FP16 outlier patches
    /// (KVQuant-style), on top of their quantized storage.
    pub outlier_fraction: f64,
    /// Quantization group size (for parameter overhead accounting).
    pub group_size: usize,
    /// Whether same-precision data is physically contiguous (Module II).
    /// When `false`, quantized values cannot be kept in packed sub-FP16
    /// buffers inside the fused attention kernel and fall back to FP16
    /// containers (see DESIGN.md), and extra per-chunk kernel switches are
    /// charged.
    pub grouped_layout: bool,
    /// The per-request search the method performs.
    pub search: SearchKind,
}

impl KvCacheProfile {
    /// Builds a profile from explicit per-bitwidth fractions.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are negative or do not sum to ≈1.
    pub fn new(
        method: impl Into<String>,
        fractions: &[(Bitwidth, f64)],
        outlier_fraction: f64,
        group_size: usize,
        grouped_layout: bool,
        search: SearchKind,
    ) -> Self {
        let map: BTreeMap<Bitwidth, f64> = fractions.iter().copied().collect();
        let total: f64 = map.values().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "bitwidth fractions must sum to 1, got {total}"
        );
        assert!(
            map.values().all(|&f| f >= 0.0),
            "fractions must be non-negative"
        );
        assert!((0.0..=1.0).contains(&outlier_fraction));
        Self {
            method: method.into(),
            fractions: map,
            outlier_fraction,
            group_size,
            grouped_layout,
            search,
        }
    }

    /// The uncompressed FP16 cache.
    pub fn fp16() -> Self {
        Self::new(
            "FP16",
            &[(Bitwidth::Fp16, 1.0)],
            0.0,
            32,
            true,
            SearchKind::None,
        )
    }

    /// Atom: uniform INT4, contiguous by construction.
    pub fn atom_int4() -> Self {
        Self::new(
            "Atom",
            &[(Bitwidth::Int4, 1.0)],
            0.0,
            32,
            true,
            SearchKind::None,
        )
    }

    /// KIVI: uniform INT4 (per-channel keys change error, not footprint).
    pub fn kivi_int4() -> Self {
        Self::new(
            "KIVI",
            &[(Bitwidth::Int4, 1.0)],
            0.0,
            32,
            true,
            SearchKind::None,
        )
    }

    /// KVQuant: INT4 with 1 % FP16 outliers and a token-level search.
    pub fn kvquant_default() -> Self {
        Self::new(
            "KVQuant",
            &[(Bitwidth::Int4, 1.0)],
            0.01,
            32,
            true,
            SearchKind::TokenLevel,
        )
    }

    /// Cocktail with the typical bitwidth mix its search produces on
    /// long-context workloads (about one chunk in ten highly relevant,
    /// three in ten in the middle band), grouped layout, chunk-level search.
    pub fn cocktail_default() -> Self {
        Self::new(
            "Cocktail",
            &[
                (Bitwidth::Int2, 0.6),
                (Bitwidth::Int4, 0.3),
                (Bitwidth::Fp16, 0.1),
            ],
            0.0,
            32,
            true,
            SearchKind::ChunkLevel,
        )
    }

    /// Cocktail without Module II: the same precision mix but interleaved
    /// in memory (the "w/o Module II" ablation of Table V).
    pub fn cocktail_without_reorder() -> Self {
        Self {
            method: "Cocktail w/o Module II".into(),
            grouped_layout: false,
            ..Self::cocktail_default()
        }
    }

    /// Cocktail without Module I: a relevance-blind mix with the same
    /// proportions (accuracy collapses but the hardware profile is nearly
    /// identical to full Cocktail, as in Table V).
    pub fn cocktail_without_search() -> Self {
        Self {
            method: "Cocktail w/o Module I".into(),
            search: SearchKind::None,
            ..Self::cocktail_default()
        }
    }

    /// The five headline methods of the paper's figures, in display order.
    pub fn paper_suite() -> Vec<KvCacheProfile> {
        vec![
            Self::fp16(),
            Self::atom_int4(),
            Self::kivi_int4(),
            Self::kvquant_default(),
            Self::cocktail_default(),
        ]
    }

    /// Builds a profile from measured per-bitwidth chunk counts (e.g. a
    /// `PolicyReport` from the pipeline), so analytic projections can use
    /// the mix a policy actually produced.
    pub fn from_chunk_counts(
        method: impl Into<String>,
        counts: &BTreeMap<Bitwidth, usize>,
        outlier_fraction: f64,
        group_size: usize,
        grouped_layout: bool,
        search: SearchKind,
    ) -> Self {
        let total: usize = counts.values().sum();
        let fractions: Vec<(Bitwidth, f64)> = if total == 0 {
            vec![(Bitwidth::Fp16, 1.0)]
        } else {
            counts
                .iter()
                .map(|(&bw, &c)| (bw, c as f64 / total as f64))
                .collect()
        };
        Self::new(
            method,
            &fractions,
            outlier_fraction,
            group_size,
            grouped_layout,
            search,
        )
    }

    /// Fraction of tokens stored at the given bitwidth.
    pub fn fraction(&self, bitwidth: Bitwidth) -> f64 {
        self.fractions.get(&bitwidth).copied().unwrap_or(0.0)
    }

    /// Mean payload bits per stored value (ignoring group parameters and
    /// outlier patches).
    pub fn mean_bits_per_value(&self) -> f64 {
        self.fractions
            .iter()
            .map(|(bw, f)| f * bw.bits() as f64)
            .sum()
    }

    /// Number of distinct precision levels present (the number of
    /// contiguous blocks after reordering).
    pub fn precision_levels(&self) -> usize {
        self.fractions.iter().filter(|(_, &f)| f > 0.0).count()
    }

    /// Effective stored bytes per value, accounting for packing (or the
    /// lack of it without Module II), per-group quantization parameters and
    /// FP16 outlier patches.
    pub fn bytes_per_value(&self) -> f64 {
        let param_bytes_per_value = 4.0 / self.group_size as f64; // fp16 scale + zero per group
        let mut total = 0.0;
        for (&bw, &fraction) in &self.fractions {
            let payload = if bw.is_float() {
                2.0
            } else if self.grouped_layout {
                bw.bits() as f64 / 8.0
            } else {
                // Interleaved mixed precision cannot stay bit-packed inside
                // the fused attention kernel's contiguous buffer: every
                // value occupies an FP16 container slot.
                2.0
            };
            let params = if bw.is_float() {
                0.0
            } else {
                param_bytes_per_value
            };
            total += fraction * (payload + params);
        }
        // Outlier tokens keep an FP16 copy (plus a 4-byte index per token,
        // negligible per value) on top of their quantized storage.
        total += self.outlier_fraction * 2.0;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_must_sum_to_one() {
        let ok = KvCacheProfile::new(
            "x",
            &[(Bitwidth::Int2, 0.5), (Bitwidth::Fp16, 0.5)],
            0.0,
            32,
            true,
            SearchKind::None,
        );
        assert_eq!(ok.precision_levels(), 2);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_fractions_panic() {
        KvCacheProfile::new(
            "x",
            &[(Bitwidth::Int2, 0.5)],
            0.0,
            32,
            true,
            SearchKind::None,
        );
    }

    #[test]
    fn bytes_per_value_ordering() {
        let fp16 = KvCacheProfile::fp16().bytes_per_value();
        let atom = KvCacheProfile::atom_int4().bytes_per_value();
        let kvq = KvCacheProfile::kvquant_default().bytes_per_value();
        let cocktail = KvCacheProfile::cocktail_default().bytes_per_value();
        let no_reorder = KvCacheProfile::cocktail_without_reorder().bytes_per_value();
        assert_eq!(fp16, 2.0);
        assert!(atom < fp16);
        assert!(kvq > atom && kvq < fp16);
        assert!(cocktail < fp16);
        // Without Module II the packed layouts are lost and the footprint
        // exceeds even FP16 (parameters on top of FP16 containers).
        assert!(no_reorder > fp16);
    }

    #[test]
    fn cocktail_mean_bits_is_close_to_four() {
        let bits = KvCacheProfile::cocktail_default().mean_bits_per_value();
        assert!((3.0..5.0).contains(&bits), "mean bits {bits}");
    }

    #[test]
    fn from_chunk_counts_normalises() {
        let mut counts = BTreeMap::new();
        counts.insert(Bitwidth::Int2, 6);
        counts.insert(Bitwidth::Int4, 3);
        counts.insert(Bitwidth::Fp16, 1);
        let profile = KvCacheProfile::from_chunk_counts(
            "measured",
            &counts,
            0.0,
            32,
            true,
            SearchKind::ChunkLevel,
        );
        assert!((profile.fraction(Bitwidth::Int2) - 0.6).abs() < 1e-9);
        assert!((profile.fractions.values().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_chunk_counts_fall_back_to_fp16() {
        let profile = KvCacheProfile::from_chunk_counts(
            "empty",
            &BTreeMap::new(),
            0.0,
            32,
            true,
            SearchKind::None,
        );
        assert_eq!(profile.fraction(Bitwidth::Fp16), 1.0);
    }

    #[test]
    fn paper_suite_has_five_methods() {
        let names: Vec<String> = KvCacheProfile::paper_suite()
            .into_iter()
            .map(|p| p.method)
            .collect();
        assert_eq!(names, vec!["FP16", "Atom", "KIVI", "KVQuant", "Cocktail"]);
    }
}
