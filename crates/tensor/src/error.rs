//! Error type for shape mismatches in tensor operations.

use std::error::Error;
use std::fmt;

/// Error returned when the shapes of two tensors are incompatible for the
/// requested operation, or when raw data does not match a declared shape.
///
/// # Example
///
/// ```
/// use cocktail_tensor::{Matrix, ShapeError};
///
/// let a = Matrix::zeros(2, 3);
/// let b = Matrix::zeros(2, 3);
/// let err: ShapeError = a.matmul(&b).unwrap_err();
/// assert!(err.to_string().contains("matmul"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    detail: String,
}

impl ShapeError {
    /// Creates a new shape error for operation `op` with a human-readable
    /// description of the mismatch.
    pub fn new(op: &'static str, detail: impl Into<String>) -> Self {
        Self {
            op,
            detail: detail.into(),
        }
    }

    /// Name of the operation that failed (e.g. `"matmul"`).
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Human-readable description of the shape mismatch.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch in {}: {}", self.op, self.detail)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_op_and_detail() {
        let err = ShapeError::new("matmul", "2x3 * 2x3");
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("2x3 * 2x3"));
    }

    #[test]
    fn accessors_round_trip() {
        let err = ShapeError::new("softmax", "empty row");
        assert_eq!(err.op(), "softmax");
        assert_eq!(err.detail(), "empty row");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
