//! A minimal IEEE-754 binary16 ("half precision", FP16) implementation.
//!
//! The Cocktail paper stores the unquantized portion of the KV cache in FP16.
//! To model FP16 storage faithfully (both its memory footprint and its
//! rounding error) without an external dependency, this module implements
//! exact bit-level `f32` ⇄ `f16` conversion with round-to-nearest-even.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An IEEE-754 binary16 floating point value stored as its raw 16 bits.
///
/// Conversion from [`f32`] uses round-to-nearest-even, matching what GPU
/// hardware does when a KV cache tensor is written out in half precision.
///
/// # Example
///
/// ```
/// use cocktail_tensor::F16;
///
/// let half = F16::from_f32(1.0 / 3.0);
/// let back = half.to_f32();
/// assert!((back - 1.0 / 3.0).abs() < 1e-3);
/// assert_eq!(F16::from_f32(1.0).to_f32(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// The value one.
    pub const ONE: F16 = F16(0x3C00);
    /// Largest finite value representable in binary16 (65504.0).
    pub const MAX: F16 = F16(0x7BFF);
    /// Number of bytes one value occupies in storage.
    pub const BYTES: usize = 2;

    /// Creates an `F16` from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Values whose magnitude exceeds [`F16::MAX`] become ±infinity, exactly
    /// as hardware conversion instructions behave.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mantissa = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // NaN or infinity.
            let payload = if mantissa != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | payload);
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow to infinity.
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal number in f16 range.
            let half_exp = (unbiased + 15) as u16;
            let half_mant = (mantissa >> 13) as u16;
            let rest = mantissa & 0x1FFF;
            let mut out = (sign) | (half_exp << 10) | half_mant;
            // Round to nearest even.
            if rest > 0x1000 || (rest == 0x1000 && (half_mant & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        if unbiased >= -25 {
            // Subnormal in f16.
            let full_mant = mantissa | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let half_mant = (full_mant >> shift) as u16;
            let rest_mask = (1u32 << shift) - 1;
            let rest = full_mant & rest_mask;
            let halfway = 1u32 << (shift - 1);
            let mut out = sign | half_mant;
            if rest > halfway || (rest == halfway && (half_mant & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        // Underflow to zero.
        F16(sign)
    }

    /// Converts the binary16 value back to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mantissa = (self.0 & 0x03FF) as u32;

        let bits = if exp == 0 {
            if mantissa == 0 {
                sign
            } else {
                // Subnormal: value is mantissa × 2⁻²⁴, which is exactly
                // representable in f32, so compute it directly.
                let magnitude = mantissa as f32 * 2f32.powi(-24);
                let value = if sign != 0 { -magnitude } else { magnitude };
                return value;
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mantissa << 13)
        } else {
            let f32_exp = exp + 127 - 15;
            sign | (f32_exp << 23) | (mantissa << 13)
        };
        f32::from_bits(bits)
    }

    /// Rounds an `f32` through binary16 precision and back, i.e. the value
    /// that would be recovered after storing it in an FP16 KV cache.
    pub fn round_trip(value: f32) -> f32 {
        Self::from_f32(value).to_f32()
    }

    /// Returns `true` if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if the value is positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }
}

impl From<f32> for F16 {
    fn from(value: f32) -> Self {
        F16::from_f32(value)
    }
}

impl From<F16> for f32 {
    fn from(value: F16) -> Self {
        value.to_f32()
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Rounds every element of a slice through FP16 precision in place.
///
/// This is the cheapest faithful way to model "this tensor is stored in
/// half precision" while keeping the working representation in `f32`.
///
/// # Example
///
/// ```
/// use cocktail_tensor::F16;
///
/// let mut data = vec![0.1f32, 1.0, -2.5];
/// cocktail_tensor::ops::round_to_f16(&mut data);
/// assert_eq!(data[1], 1.0);
/// assert_eq!(data[2], -2.5);
/// assert_eq!(data[0], F16::round_trip(0.1));
/// ```
pub(crate) fn round_slice_to_f16(values: &mut [f32]) {
    for v in values.iter_mut() {
        *v = F16::round_trip(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(F16::round_trip(x), x, "integer {i} must be exact in f16");
        }
    }

    #[test]
    fn powers_of_two_round_trip() {
        for e in -14..=15 {
            let x = 2f32.powi(e);
            assert_eq!(F16::round_trip(x), x);
        }
    }

    #[test]
    fn one_third_is_close() {
        let x = 1.0f32 / 3.0;
        let rt = F16::round_trip(x);
        assert!((rt - x).abs() < 1e-3);
    }

    #[test]
    fn overflow_becomes_infinity() {
        let h = F16::from_f32(1e6);
        assert!(h.is_infinite());
        assert!(h.to_f32().is_infinite());
        let h = F16::from_f32(-1e6);
        assert!(h.is_infinite());
        assert!(h.to_f32().is_sign_negative());
    }

    #[test]
    fn nan_is_preserved() {
        let h = F16::from_f32(f32::NAN);
        assert!(h.is_nan());
        assert!(h.to_f32().is_nan());
    }

    #[test]
    fn zero_signs_preserved() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn max_value_round_trips() {
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::from_f32(65504.0), F16::MAX);
    }

    #[test]
    fn subnormals_round_trip() {
        // Smallest positive subnormal of f16 is 2^-24.
        let tiny = 2f32.powi(-24);
        assert_eq!(F16::round_trip(tiny), tiny);
        // Below half of the smallest subnormal rounds to zero.
        let below = 2f32.powi(-26);
        assert_eq!(F16::round_trip(below), 0.0);
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::BYTES, 2);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(F16::ONE.to_string(), "1");
    }

    #[test]
    fn round_slice_rounds_every_element() {
        let mut values = vec![0.1, 0.2, 0.3, 1.0];
        round_slice_to_f16(&mut values);
        for v in &values {
            assert_eq!(*v, F16::round_trip(*v), "idempotent after one pass");
        }
    }

    proptest! {
        #[test]
        fn round_trip_error_is_bounded(x in -60000.0f32..60000.0) {
            let rt = F16::round_trip(x);
            // Relative error of f16 is at most 2^-11 for normal numbers.
            let tol = (x.abs() * 1e-3).max(1e-7) + 6.0e-8;
            prop_assert!((rt - x).abs() <= tol, "x={x} rt={rt}");
        }

        #[test]
        fn conversion_is_idempotent(x in -60000.0f32..60000.0) {
            let once = F16::round_trip(x);
            let twice = F16::round_trip(once);
            prop_assert_eq!(once.to_bits(), twice.to_bits());
        }

        #[test]
        fn ordering_is_preserved(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(F16::round_trip(lo) <= F16::round_trip(hi));
        }
    }
}
