//! Deterministic random initialisation helpers.
//!
//! Every stochastic artefact in the reproduction — model weights, synthetic
//! workload text, encoder projections — is derived from an explicit `u64`
//! seed through ChaCha8, so that `cargo test` and every experiment binary
//! produce identical numbers on every run and platform.

use crate::matrix::Matrix;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates a deterministic RNG from a seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = cocktail_tensor::rng::seeded_rng(42);
/// let mut b = cocktail_tensor::rng::seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a label.
///
/// Used to give every layer / head / workload its own independent stream
/// while keeping a single top-level seed per experiment.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    // FNV-1a over the label, mixed with the parent seed.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^ parent.rotate_left(17)
}

/// Fills a matrix with samples from `U(-scale, scale)`.
pub fn uniform_matrix(rows: usize, cols: usize, scale: f32, seed: u64) -> Matrix {
    let mut rng = seeded_rng(seed);
    let dist = Uniform::new_inclusive(-scale, scale);
    let data: Vec<f32> = (0..rows * cols).map(|_| dist.sample(&mut rng)).collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches generated data")
}

/// Fills a matrix with approximately normal samples (mean 0, std `std`).
///
/// Uses the sum-of-uniforms approximation (Irwin–Hall with 12 terms), which
/// is plenty for weight initialisation and avoids a Box–Muller edge case at 0.
pub fn gaussian_matrix(rows: usize, cols: usize, std: f32, seed: u64) -> Matrix {
    let mut rng = seeded_rng(seed);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            let sum: f32 = (0..12).map(|_| rng.gen::<f32>()).sum();
            (sum - 6.0) * std
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches generated data")
}

/// Xavier/Glorot-style initialisation for a projection of shape
/// `rows × cols`: uniform with scale `sqrt(6 / (rows + cols))`.
pub fn xavier_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let scale = (6.0 / (rows + cols) as f32).sqrt();
    uniform_matrix(rows, cols, scale, seed)
}

/// Generates a vector of samples from `U(-scale, scale)`.
pub fn uniform_vec(len: usize, scale: f32, seed: u64) -> Vec<f32> {
    let mut rng = seeded_rng(seed);
    let dist = Uniform::new_inclusive(-scale, scale);
    (0..len).map(|_| dist.sample(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let a = uniform_matrix(4, 4, 1.0, 7);
        let b = uniform_matrix(4, 4, 1.0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform_matrix(4, 4, 1.0, 7);
        let b = uniform_matrix(4, 4, 1.0, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn derive_seed_depends_on_label_and_parent() {
        assert_ne!(derive_seed(1, "layer0"), derive_seed(1, "layer1"));
        assert_ne!(derive_seed(1, "layer0"), derive_seed(2, "layer0"));
        assert_eq!(derive_seed(5, "wq"), derive_seed(5, "wq"));
    }

    #[test]
    fn uniform_matrix_respects_scale() {
        let m = uniform_matrix(16, 16, 0.5, 3);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn gaussian_matrix_has_roughly_zero_mean() {
        let m = gaussian_matrix(64, 64, 1.0, 11);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn gaussian_matrix_std_is_close() {
        let std = 0.02f32;
        let m = gaussian_matrix(64, 64, std, 13);
        let var: f32 = m.as_slice().iter().map(|v| v * v).sum::<f32>() / m.len() as f32;
        let measured = var.sqrt();
        assert!((measured - std).abs() < std * 0.2, "measured={measured}");
    }

    #[test]
    fn xavier_scale_shrinks_with_size() {
        let small = xavier_matrix(4, 4, 1);
        let large = xavier_matrix(1024, 1024, 1);
        let max_small = small.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let max_large = large.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max_large < max_small);
    }

    #[test]
    fn uniform_vec_is_reproducible_and_bounded() {
        let a = uniform_vec(32, 2.0, 9);
        let b = uniform_vec(32, 2.0, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.abs() <= 2.0));
    }
}
