//! Thin vector helpers: dot products, norms and cosine similarity.
//!
//! Cosine similarity is the scoring function of the paper's chunk-level
//! quantization search (Eq. 1): `sim(q, cᵢ) = q·cᵢ / (‖q‖·‖cᵢ‖)`.

/// A convenience alias: dense embedding vectors are plain `Vec<f32>`.
///
/// The retrieval encoders in `cocktail-retrieval` produce these.
pub type Vector = Vec<f32>;

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(cocktail_tensor::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product of unequal-length vectors");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a slice.
///
/// # Example
///
/// ```
/// assert_eq!(cocktail_tensor::l2_norm(&[3.0, 4.0]), 5.0);
/// ```
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Cosine similarity between two equal-length vectors (Eq. 1 of the paper).
///
/// Returns `0.0` when either vector has zero norm, which is the safe
/// convention for empty or all-zero chunk embeddings.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// let sim = cocktail_tensor::cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]);
/// assert!((sim - 1.0).abs() < 1e-6);
/// let orth = cocktail_tensor::cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]);
/// assert!(orth.abs() < 1e-6);
/// ```
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0, 0.0], &[0.0, 5.0, 0.0]), 0.0);
    }

    #[test]
    fn l2_norm_of_zero_vector_is_zero() {
        assert_eq!(l2_norm(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = [0.3, -1.2, 4.5, 0.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        let v = [1.0, 2.0];
        let w = [-1.0, -2.0];
        assert!((cosine_similarity(&v, &w) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_with_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_similarity(&[1.0, 2.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "unequal-length")]
    fn dot_panics_on_length_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn cosine_similarity_is_bounded(
            a in proptest::collection::vec(-100.0f32..100.0, 1..32),
            seed in 0u64..1000
        ) {
            let b: Vec<f32> = a
                .iter()
                .enumerate()
                .map(|(i, _)| ((i as u64 * 977 + seed) % 41) as f32 - 20.0)
                .collect();
            let sim = cosine_similarity(&a, &b);
            prop_assert!((-1.0001..=1.0001).contains(&sim), "sim={sim}");
        }

        #[test]
        fn cosine_is_scale_invariant(
            a in proptest::collection::vec(-10.0f32..10.0, 2..16),
            scale in 0.1f32..50.0
        ) {
            let b: Vec<f32> = a.iter().map(|x| x + 1.0).collect();
            let scaled: Vec<f32> = a.iter().map(|x| x * scale).collect();
            let s1 = cosine_similarity(&a, &b);
            let s2 = cosine_similarity(&scaled, &b);
            prop_assert!((s1 - s2).abs() < 1e-3, "s1={s1} s2={s2}");
        }

        #[test]
        fn norm_is_non_negative(a in proptest::collection::vec(-100.0f32..100.0, 0..32)) {
            prop_assert!(l2_norm(&a) >= 0.0);
        }
    }
}
