//! Transformer-specific element-wise and normalisation operations.
//!
//! These free functions implement the non-GEMM math a Llama-family decoder
//! block needs: RMS normalisation, rotary position embeddings (RoPE), the
//! SiLU activation used by SwiGLU MLPs, and FP16 rounding helpers.

use crate::f16::round_slice_to_f16;
use crate::matrix::Matrix;

/// Applies RMS normalisation to a single vector in place.
///
/// `x_i ← x_i / sqrt(mean(x²) + eps) * weight_i`, the normalisation used by
/// Llama-style models (no mean subtraction, no bias).
///
/// # Panics
///
/// Panics if `weight.len() != x.len()`.
///
/// # Example
///
/// ```
/// let mut x = vec![3.0f32, 4.0];
/// let w = vec![1.0f32, 1.0];
/// cocktail_tensor::ops::rms_norm(&mut x, &w, 1e-6);
/// let rms: f32 = (x.iter().map(|v| v * v).sum::<f32>() / 2.0).sqrt();
/// assert!((rms - 1.0).abs() < 1e-4);
/// ```
pub fn rms_norm(x: &mut [f32], weight: &[f32], eps: f32) {
    assert_eq!(x.len(), weight.len(), "rms_norm weight length mismatch");
    if x.is_empty() {
        return;
    }
    let mean_sq: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (mean_sq + eps).sqrt();
    for (v, w) in x.iter_mut().zip(weight.iter()) {
        *v = *v * inv * w;
    }
}

/// Applies RMS normalisation to every row of a matrix in place.
///
/// # Panics
///
/// Panics if `weight.len() != m.cols()`.
pub fn rms_norm_rows(m: &mut Matrix, weight: &[f32], eps: f32) {
    assert_eq!(
        m.cols(),
        weight.len(),
        "rms_norm_rows weight length mismatch"
    );
    for r in 0..m.rows() {
        rms_norm(m.row_mut(r), weight, eps);
    }
}

/// The SiLU (a.k.a. swish) activation: `x * sigmoid(x)`.
///
/// # Example
///
/// ```
/// assert_eq!(cocktail_tensor::ops::silu(0.0), 0.0);
/// assert!(cocktail_tensor::ops::silu(10.0) > 9.9);
/// ```
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Applies SiLU element-wise in place.
pub fn silu_in_place(xs: &mut [f32]) {
    for x in xs.iter_mut() {
        *x = silu(*x);
    }
}

/// Applies rotary position embeddings (RoPE) to a single head vector in
/// place, for absolute position `pos`.
///
/// The vector is interpreted as `dim/2` complex pairs `(x[2i], x[2i+1])`,
/// each rotated by angle `pos · θ⁻²ⁱ/ᵈ` with base `theta` (10 000.0 for
/// Llama-family models).
///
/// # Panics
///
/// Panics if the vector length is odd.
///
/// # Example
///
/// ```
/// let mut v = vec![1.0f32, 0.0];
/// cocktail_tensor::ops::rope_in_place(&mut v, 0, 10_000.0);
/// assert_eq!(v, vec![1.0, 0.0]); // position 0 is a no-op rotation
/// ```
pub fn rope_in_place(x: &mut [f32], pos: usize, theta: f32) {
    assert!(x.len() % 2 == 0, "RoPE requires an even head dimension");
    let dim = x.len();
    for i in 0..dim / 2 {
        let freq = 1.0 / theta.powf(2.0 * i as f32 / dim as f32);
        let angle = pos as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        let a = x[2 * i];
        let b = x[2 * i + 1];
        x[2 * i] = a * cos - b * sin;
        x[2 * i + 1] = a * sin + b * cos;
    }
}

/// Applies RoPE to every row of a matrix, where row `r` sits at absolute
/// position `start_pos + r`.
///
/// # Panics
///
/// Panics if the column count is odd.
pub fn rope_rows(m: &mut Matrix, start_pos: usize, theta: f32) {
    for r in 0..m.rows() {
        rope_in_place(m.row_mut(r), start_pos + r, theta);
    }
}

/// Builds the additive causal attention mask for a query block of
/// `q_len` tokens attending over `kv_len` cached tokens.
///
/// Query row `i` corresponds to absolute position `kv_len - q_len + i`; it
/// may attend to every key at position `<=` its own, and is blocked
/// (`-inf`) from later keys. During decode (`q_len == 1`) the mask is all
/// zeros, matching the paper's Algorithm 1 where the single query token
/// attends to the whole context cache.
///
/// # Example
///
/// ```
/// let mask = cocktail_tensor::ops::causal_mask(2, 4);
/// assert_eq!(mask.get(0, 3), f32::NEG_INFINITY); // first query cannot see the last key
/// assert_eq!(mask.get(1, 3), 0.0); // last query sees everything
/// ```
pub fn causal_mask(q_len: usize, kv_len: usize) -> Matrix {
    let mut mask = Matrix::zeros(q_len, kv_len);
    let offset = kv_len.saturating_sub(q_len);
    for i in 0..q_len {
        for j in 0..kv_len {
            if j > offset + i {
                mask.set(i, j, f32::NEG_INFINITY);
            }
        }
    }
    mask
}

/// Permutes the columns of an additive attention mask.
///
/// When KV-cache chunks are reordered (Module II of the paper), the mask
/// columns must follow the same permutation so that each logical token keeps
/// its visibility; `col_order[new] = old`.
///
/// # Panics
///
/// Panics if `col_order.len() != mask.cols()` or any index is out of range.
pub fn permute_mask_columns(mask: &Matrix, col_order: &[usize]) -> Matrix {
    assert_eq!(
        col_order.len(),
        mask.cols(),
        "mask permutation length mismatch"
    );
    let mut out = Matrix::zeros(mask.rows(), mask.cols());
    for r in 0..mask.rows() {
        for (new_c, &old_c) in col_order.iter().enumerate() {
            assert!(old_c < mask.cols(), "mask permutation index out of range");
            out.set(r, new_c, mask.get(r, old_c));
        }
    }
    out
}

/// Rounds a slice of `f32` values through FP16 precision in place.
///
/// See [`crate::F16::round_trip`] for the rounding behaviour.
pub fn round_to_f16(values: &mut [f32]) {
    round_slice_to_f16(values);
}

/// Numerically stable softmax over a slice, in place.
///
/// Fully `-inf` inputs become all zeros (the fully-masked convention used by
/// [`Matrix::softmax_rows`]).
pub fn softmax_in_place(xs: &mut [f32]) {
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        for x in xs.iter_mut() {
            *x = 0.0;
        }
        return;
    }
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

/// Mean of a slice; `0.0` for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rms_norm_produces_unit_rms_with_unit_weight() {
        let mut x = vec![1.0f32, 2.0, 3.0, 4.0];
        let w = vec![1.0f32; 4];
        rms_norm(&mut x, &w, 1e-6);
        let rms = (x.iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-4);
    }

    #[test]
    fn rms_norm_applies_weight() {
        let mut x = vec![1.0f32, 1.0];
        let w = vec![2.0f32, 0.5];
        rms_norm(&mut x, &w, 1e-6);
        assert!((x[0] / x[1] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn rms_norm_empty_is_noop() {
        let mut x: Vec<f32> = vec![];
        rms_norm(&mut x, &[], 1e-6);
        assert!(x.is_empty());
    }

    #[test]
    fn rms_norm_rows_normalises_each_row_independently() {
        let mut m = Matrix::from_rows(&[vec![10.0, 0.0], vec![0.0, 0.1]]).unwrap();
        let w = vec![1.0f32, 1.0];
        rms_norm_rows(&mut m, &w, 1e-6);
        for r in 0..2 {
            let rms = (m.row(r).iter().map(|v| v * v).sum::<f32>() / 2.0).sqrt();
            assert!((rms - 1.0).abs() < 1e-2, "row {r} rms {rms}");
        }
    }

    #[test]
    fn silu_known_values() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.731_058_6).abs() < 1e-5);
        assert!(silu(-20.0).abs() < 1e-6);
    }

    #[test]
    fn silu_in_place_matches_scalar() {
        let mut xs = vec![-1.0f32, 0.0, 2.0];
        let expected: Vec<f32> = xs.iter().map(|&x| silu(x)).collect();
        silu_in_place(&mut xs);
        assert_eq!(xs, expected);
    }

    #[test]
    fn rope_at_position_zero_is_identity() {
        let mut v = vec![0.3f32, -1.0, 2.0, 0.5];
        let original = v.clone();
        rope_in_place(&mut v, 0, 10_000.0);
        for (a, b) in v.iter().zip(original.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rope_preserves_norm() {
        let mut v = vec![1.0f32, 2.0, -0.5, 0.7, 3.0, -1.0];
        let norm_before = crate::l2_norm(&v);
        rope_in_place(&mut v, 17, 10_000.0);
        let norm_after = crate::l2_norm(&v);
        assert!((norm_before - norm_after).abs() < 1e-4);
    }

    #[test]
    fn rope_relative_rotation_property() {
        // The inner product of two RoPE-rotated vectors depends only on the
        // relative distance between their positions.
        let q = vec![0.5f32, 1.0, -0.3, 0.8];
        let k = vec![1.0f32, -0.2, 0.6, 0.4];
        let score_at = |pq: usize, pk: usize| {
            let mut qr = q.clone();
            let mut kr = k.clone();
            rope_in_place(&mut qr, pq, 10_000.0);
            rope_in_place(&mut kr, pk, 10_000.0);
            crate::dot(&qr, &kr)
        };
        let a = score_at(5, 2);
        let b = score_at(105, 102);
        assert!((a - b).abs() < 1e-3, "a={a} b={b}");
    }

    #[test]
    #[should_panic(expected = "even head dimension")]
    fn rope_panics_on_odd_dim() {
        let mut v = vec![1.0f32, 2.0, 3.0];
        rope_in_place(&mut v, 1, 10_000.0);
    }

    #[test]
    fn causal_mask_decode_step_is_all_zero() {
        let mask = causal_mask(1, 10);
        assert!(mask.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn causal_mask_prefill_blocks_future() {
        let mask = causal_mask(3, 3);
        assert_eq!(mask.get(0, 1), f32::NEG_INFINITY);
        assert_eq!(mask.get(0, 0), 0.0);
        assert_eq!(mask.get(2, 2), 0.0);
        assert_eq!(mask.get(1, 2), f32::NEG_INFINITY);
    }

    #[test]
    fn permute_mask_columns_moves_blocks() {
        let mask = causal_mask(2, 4);
        let perm = vec![3, 2, 1, 0];
        let permuted = permute_mask_columns(&mask, &perm);
        for r in 0..2 {
            for (new_c, &old_c) in perm.iter().enumerate() {
                assert_eq!(permuted.get(r, new_c), mask.get(r, old_c));
            }
        }
    }

    #[test]
    fn softmax_in_place_sums_to_one() {
        let mut xs = vec![1.0f32, 2.0, 3.0];
        softmax_in_place(&mut xs);
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_all_masked_is_zero() {
        let mut xs = vec![f32::NEG_INFINITY; 3];
        softmax_in_place(&mut xs);
        assert_eq!(xs, vec![0.0; 3]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    proptest! {
        #[test]
        fn rope_is_norm_preserving_for_any_position(
            pos in 0usize..4096,
            v in proptest::collection::vec(-10.0f32..10.0, 2..16)
        ) {
            let mut v = v;
            if v.len() % 2 == 1 {
                v.pop();
            }
            prop_assume!(!v.is_empty());
            let before = crate::l2_norm(&v);
            rope_in_place(&mut v, pos, 10_000.0);
            let after = crate::l2_norm(&v);
            prop_assert!((before - after).abs() < 1e-2 * before.max(1.0));
        }

        #[test]
        fn rms_norm_output_is_finite(
            v in proptest::collection::vec(-1000.0f32..1000.0, 1..32)
        ) {
            let mut v = v;
            let w = vec![1.0f32; v.len()];
            rms_norm(&mut v, &w, 1e-6);
            prop_assert!(v.iter().all(|x| x.is_finite()));
        }

        #[test]
        fn causal_mask_is_lower_triangular_band(q in 1usize..8, extra in 0usize..8) {
            let kv = q + extra;
            let mask = causal_mask(q, kv);
            for i in 0..q {
                for j in 0..kv {
                    let visible = j <= extra + i;
                    if visible {
                        prop_assert_eq!(mask.get(i, j), 0.0);
                    } else {
                        prop_assert_eq!(mask.get(i, j), f32::NEG_INFINITY);
                    }
                }
            }
        }
    }
}
