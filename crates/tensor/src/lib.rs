//! Dense linear-algebra primitives used throughout the Cocktail reproduction.
//!
//! The crate provides exactly the operations a decoder-only transformer
//! inference engine with a quantized KV cache needs, implemented from
//! scratch on plain `Vec<f32>` storage:
//!
//! * [`Matrix`] — a row-major 2-D tensor with blocked matrix multiplication,
//!   transposition, row-wise softmax (with additive masks) and norms.
//! * [`F16`] — an IEEE-754 binary16 value with exact bit-level conversion,
//!   used to model FP16 KV-cache storage without pulling in a dependency.
//! * [`ops`] — free functions for RMS normalisation, rotary position
//!   embeddings (RoPE), SiLU, cosine similarity and friends.
//! * [`rng`] — deterministic, seedable random initialisation helpers so that
//!   every experiment in the paper reproduction is bit-for-bit repeatable.
//!
//! # Example
//!
//! ```
//! use cocktail_tensor::Matrix;
//!
//! # fn main() -> Result<(), cocktail_tensor::ShapeError> {
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod f16;
mod matrix;
pub mod ops;
pub mod rng;
mod vector;

pub use error::ShapeError;
pub use f16::F16;
pub use matrix::Matrix;
pub use vector::{cosine_similarity, dot, l2_norm, Vector};
