//! Row-major dense matrix with the operations a transformer decoder needs.

use crate::error::ShapeError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major matrix of `f32` values.
///
/// `Matrix` is the working representation for activations, attention scores
/// and (dequantized) KV-cache blocks throughout the Cocktail reproduction.
/// All operations validate shapes and return [`ShapeError`] on mismatch.
///
/// # Example
///
/// ```
/// use cocktail_tensor::Matrix;
///
/// # fn main() -> Result<(), cocktail_tensor::ShapeError> {
/// let q = Matrix::from_rows(&[vec![1.0, 0.0]])?;
/// let k = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]])?;
/// let scores = q.matmul(&k.transpose())?;
/// assert_eq!(scores.shape(), (1, 2));
/// assert_eq!(scores.get(0, 0), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(
                "from_vec",
                format!(
                    "data length {} does not match shape {}x{}",
                    data.len(),
                    rows,
                    cols
                ),
            ));
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, ShapeError> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(ShapeError::new(
                    "from_rows",
                    format!("row {} has length {}, expected {}", i, row.len(), cols),
                ));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets element `(row, col)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Immutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies column `col` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    pub fn column(&self, col: usize) -> Vec<f32> {
        assert!(col < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix multiplication `self * other` using a cache-blocked kernel.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(
                "matmul",
                format!(
                    "{}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            ));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // rows of `other` and `out`, which is the standard cache-friendly
        // ordering for row-major data.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Multiplies `self` by the transpose of `other` (`self * otherᵀ`)
    /// without materialising the transpose.
    ///
    /// This is the hot kernel of attention-score computation
    /// (`Q · Kᵀ`), where both operands are stored row-major.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.cols()`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError::new(
                "matmul_transposed",
                format!(
                    "{}x{} * ({}x{})^T",
                    self.rows, self.cols, other.rows, other.cols
                ),
            ));
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        Ok(out)
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(
                "add",
                format!("{:?} + {:?}", self.shape(), other.shape()),
            ));
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise addition in place.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(
                "add_assign",
                format!("{:?} += {:?}", self.shape(), other.shape()),
            ));
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Element-wise subtraction (`self - other`).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(
                "sub",
                format!("{:?} - {:?}", self.shape(), other.shape()),
            ));
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every element by `scalar`, returning a new matrix.
    pub fn scale(&self, scalar: f32) -> Matrix {
        let data = self.data.iter().map(|v| v * scalar).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiplies every element by `scalar` in place.
    pub fn scale_in_place(&mut self, scalar: f32) {
        for v in &mut self.data {
            *v *= scalar;
        }
    }

    /// Concatenates matrices along the row dimension (stacking).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the column counts differ.
    pub fn concat_rows(parts: &[&Matrix]) -> Result<Matrix, ShapeError> {
        let non_empty: Vec<&&Matrix> = parts.iter().filter(|m| !m.is_empty()).collect();
        if non_empty.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = non_empty[0].cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for m in parts.iter().filter(|m| !m.is_empty()) {
            if m.cols != cols {
                return Err(ShapeError::new(
                    "concat_rows",
                    format!("column mismatch: {} vs {}", m.cols, cols),
                ));
            }
            data.extend_from_slice(&m.data);
            rows += m.rows;
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Concatenates matrices along the column dimension (side by side).
    ///
    /// This is the `cat(..., -1)` of Algorithm 1 in the paper: the three
    /// attention-score blocks produced by the INT2 / INT4 / FP16 key groups
    /// are concatenated along the token axis.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the row counts differ.
    pub fn concat_cols(parts: &[&Matrix]) -> Result<Matrix, ShapeError> {
        let non_empty: Vec<&&Matrix> = parts.iter().filter(|m| !m.is_empty()).collect();
        if non_empty.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let rows = non_empty[0].rows;
        let total_cols: usize = non_empty.iter().map(|m| m.cols).sum();
        for m in &non_empty {
            if m.rows != rows {
                return Err(ShapeError::new(
                    "concat_cols",
                    format!("row mismatch: {} vs {}", m.rows, rows),
                ));
            }
        }
        let mut out = Matrix::zeros(rows, total_cols);
        for r in 0..rows {
            let mut offset = 0;
            for m in &non_empty {
                out.data[r * total_cols + offset..r * total_cols + offset + m.cols]
                    .copy_from_slice(m.row(r));
                offset += m.cols;
            }
        }
        Ok(out)
    }

    /// Returns the sub-matrix consisting of rows `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > rows()`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of bounds");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Returns the sub-matrix consisting of columns `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > cols()`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "column slice out of bounds"
        );
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Applies the softmax function to every row in place.
    ///
    /// Uses the numerically stable max-subtraction formulation. Rows that
    /// are entirely `-inf` (fully masked) become all zeros rather than NaN.
    pub fn softmax_rows(&mut self) {
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            if max == f32::NEG_INFINITY {
                for v in row.iter_mut() {
                    *v = 0.0;
                }
                continue;
            }
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// Adds `mask` to the matrix and applies row softmax, returning a new
    /// matrix (the `softmax(att + mask)` step of Algorithm 1).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the mask shape differs.
    pub fn masked_softmax(&self, mask: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = self.add(mask)?;
        out.softmax_rows();
        Ok(out)
    }

    /// Rounds every element through FP16 precision in place, modelling
    /// storage of this matrix in a half-precision buffer.
    pub fn round_to_f16(&mut self) {
        crate::f16::round_slice_to_f16(&mut self.data);
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Mean squared difference between two matrices of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn mse(&self, other: &Matrix) -> Result<f32, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(
                "mse",
                format!("{:?} vs {:?}", self.shape(), other.shape()),
            ));
        }
        if self.is_empty() {
            return Ok(0.0);
        }
        let sum: f32 = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        Ok(sum / self.data.len() as f32)
    }

    /// Maximum absolute difference between two matrices of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f32, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(
                "max_abs_diff",
                format!("{:?} vs {:?}", self.shape(), other.shape()),
            ));
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Gathers the given rows into a new matrix, in the order supplied.
    ///
    /// This is the primitive behind KV-chunk reordering: a permutation of
    /// chunk indices expands to a permutation of token rows.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "gather index out of bounds");
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self.get(r, c))?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_identity_map() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let id = Matrix::identity(3);
        let prod = a.matmul(&id).unwrap();
        assert_eq!(prod, a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.5, -1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[
            vec![2.0, 0.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![0.0, 3.0, -1.0],
        ])
        .unwrap();
        let via_t = a.matmul(&b.transpose()).unwrap();
        let fused = a.matmul_transposed(&b).unwrap();
        assert_eq!(via_t.shape(), fused.shape());
        for (x, y) in via_t.as_slice().iter().zip(fused.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-6));
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).is_ok());
    }

    #[test]
    fn from_rows_validates_row_lengths() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn add_and_sub_are_inverses() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.5, -0.5], vec![1.5, 2.5]]).unwrap();
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        let expected = a.add(&b).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(a, expected);
    }

    #[test]
    fn scale_multiplies_every_element() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]).unwrap();
        let s = a.scale(3.0);
        assert_eq!(s.as_slice(), &[3.0, -6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 1.0]]).unwrap();
        m.softmax_rows();
        for r in 0..m.rows() {
            let sum: f32 = m.row(r).iter().sum();
            assert!(approx_eq(sum, 1.0, 1e-5));
        }
    }

    #[test]
    fn softmax_fully_masked_row_is_zero() {
        let mut m = Matrix::from_rows(&[vec![f32::NEG_INFINITY, f32::NEG_INFINITY]]).unwrap();
        m.softmax_rows();
        assert_eq!(m.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn masked_softmax_respects_mask() {
        let scores = Matrix::from_rows(&[vec![5.0, 5.0, 5.0]]).unwrap();
        let mask = Matrix::from_rows(&[vec![0.0, f32::NEG_INFINITY, 0.0]]).unwrap();
        let out = scores.masked_softmax(&mask).unwrap();
        assert!(approx_eq(out.get(0, 0), 0.5, 1e-5));
        assert_eq!(out.get(0, 1), 0.0);
        assert!(approx_eq(out.get(0, 2), 0.5, 1e-5));
    }

    #[test]
    fn concat_cols_matches_layout() {
        let a = Matrix::from_rows(&[vec![1.0], vec![3.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![2.0, 2.5], vec![4.0, 4.5]]).unwrap();
        let c = Matrix::concat_cols(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 2.5]);
        assert_eq!(c.row(1), &[3.0, 4.0, 4.5]);
    }

    #[test]
    fn concat_rows_matches_layout() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let c = Matrix::concat_rows(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn concat_handles_empty_parts() {
        let empty = Matrix::zeros(0, 0);
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let c = Matrix::concat_cols(&[&empty, &a, &empty]).unwrap();
        assert_eq!(c, a);
        let r = Matrix::concat_rows(&[&empty, &a]).unwrap();
        assert_eq!(r, a);
    }

    #[test]
    fn concat_mismatch_errors() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 2);
        assert!(Matrix::concat_cols(&[&a, &b]).is_err());
        let c = Matrix::zeros(2, 3);
        assert!(Matrix::concat_rows(&[&b, &c]).is_err());
    }

    #[test]
    fn slice_rows_and_cols() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let mid = m.slice_rows(1, 2);
        assert_eq!(mid.as_slice(), &[4.0, 5.0, 6.0]);
        let right = m.slice_cols(2, 3);
        assert_eq!(right.column(0), vec![3.0, 6.0, 9.0]);
    }

    #[test]
    fn gather_rows_reorders() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let g = m.gather_rows(&[2, 0, 1]);
        assert_eq!(g.column(0), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn mse_and_max_abs_diff() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![1.5, 1.0]]).unwrap();
        let mse = a.mse(&b).unwrap();
        assert!(approx_eq(mse, (0.25 + 1.0) / 2.0, 1e-6));
        assert!(approx_eq(a.max_abs_diff(&b).unwrap(), 1.0, 1e-6));
    }

    #[test]
    fn round_to_f16_is_idempotent() {
        let mut m = Matrix::from_rows(&[vec![0.1, 0.2, 0.33333]]).unwrap();
        m.round_to_f16();
        let once = m.clone();
        m.round_to_f16();
        assert_eq!(m, once);
    }

    #[test]
    fn display_does_not_panic_on_large_matrix() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m}");
        assert!(s.contains("Matrix 20x20"));
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!(approx_eq(m.frobenius_norm(), 5.0, 1e-6));
    }

    #[test]
    fn column_extracts_correct_values() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.column(1), vec![2.0, 4.0]);
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[3.0, 4.0]);
    }

    proptest! {
        #[test]
        fn matmul_is_associative_with_identity(
            rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000
        ) {
            let data: Vec<f32> = (0..rows * cols)
                .map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f32 / 100.0 - 5.0)
                .collect();
            let a = Matrix::from_vec(rows, cols, data).unwrap();
            let left = Matrix::identity(rows).matmul(&a).unwrap();
            let right = a.matmul(&Matrix::identity(cols)).unwrap();
            prop_assert_eq!(&left, &a);
            prop_assert_eq!(&right, &a);
        }

        #[test]
        fn transpose_preserves_elements(rows in 1usize..8, cols in 1usize..8, seed in 0u64..100) {
            let data: Vec<f32> = (0..rows * cols)
                .map(|i| ((i as u64 * 31 + seed * 7) % 97) as f32)
                .collect();
            let m = Matrix::from_vec(rows, cols, data).unwrap();
            let t = m.transpose();
            for r in 0..rows {
                for c in 0..cols {
                    prop_assert_eq!(m.get(r, c), t.get(c, r));
                }
            }
        }

        #[test]
        fn softmax_output_is_probability_distribution(
            cols in 1usize..12, seed in 0u64..500
        ) {
            let data: Vec<f32> = (0..cols)
                .map(|i| ((i as u64 * 131 + seed) % 23) as f32 - 11.0)
                .collect();
            let mut m = Matrix::from_vec(1, cols, data).unwrap();
            m.softmax_rows();
            let sum: f32 = m.row(0).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(m.row(0).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn gather_rows_then_inverse_is_identity(n in 1usize..10, seed in 0u64..100) {
            let data: Vec<f32> = (0..n * 3).map(|i| (i as u64 + seed) as f32).collect();
            let m = Matrix::from_vec(n, 3, data).unwrap();
            // Build a deterministic permutation.
            let mut perm: Vec<usize> = (0..n).collect();
            perm.rotate_left((seed as usize) % n.max(1));
            let mut inverse = vec![0usize; n];
            for (i, &p) in perm.iter().enumerate() {
                inverse[p] = i;
            }
            let permuted = m.gather_rows(&perm);
            let restored = permuted.gather_rows(&inverse);
            prop_assert_eq!(restored, m);
        }
    }
}
